//! Shared telemetry wiring for the experiment binaries.
//!
//! Every binary under `src/bin/` opens an [`ObsSession`] as its first
//! statement. The session reads three flags from the command line:
//!
//! - `--metrics-out <path>`: enable telemetry and write the flat
//!   sorted-key metrics JSON on exit;
//! - `--trace-out <path>`: additionally record trace events and write
//!   Chrome trace-event JSON (load in `chrome://tracing` or Perfetto);
//! - `--obs-profile`: additionally record `wall.*` wall-clock metrics
//!   (waives the byte-identical guarantee for those metrics alone);
//! - `--span-sample <rate>`: sample per-invocation lifecycle spans at
//!   the given rate (0 disables the layer entirely; 1 samples every
//!   invocation), seeded by `--span-seed` (default 0x5EED);
//! - `--span-out <path>`: write the sampled spans as a JSON-lines
//!   table (implies event recording, like `--trace-out`).
//!
//! With none of the flags present, nothing is enabled and the binary's
//! output is byte-identical to an uninstrumented build. Flag parsing
//! lives here — in the `Runtime`-class bench crate — because the
//! deterministic crates are forbidden to read ambient state; they only
//! ever see the process-global switches this session sets (the span
//! config travels through [`femux_obs::span::set_ambient`], which the
//! fleet runner folds into each `SimConfig`).

use std::path::PathBuf;

/// Telemetry switches + output paths for one binary run. Dropping the
/// session collects the report and writes the requested files.
pub struct ObsSession {
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    span_out: Option<PathBuf>,
}

/// Opens the session from the process arguments.
pub fn session() -> ObsSession {
    from_args(std::env::args().skip(1))
}

fn from_args<I: Iterator<Item = String>>(mut args: I) -> ObsSession {
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut span_out = None;
    let mut span_rate = 0.0f64;
    let mut span_seed = 0x5EEDu64;
    let mut profile = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => metrics_out = args.next().map(PathBuf::from),
            "--trace-out" => trace_out = args.next().map(PathBuf::from),
            "--span-out" => span_out = args.next().map(PathBuf::from),
            "--span-sample" => {
                span_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0);
            }
            "--span-seed" => {
                span_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(span_seed);
            }
            "--obs-profile" => profile = true,
            _ => {
                if let Some(v) = arg.strip_prefix("--metrics-out=") {
                    metrics_out = Some(PathBuf::from(v));
                } else if let Some(v) = arg.strip_prefix("--trace-out=") {
                    trace_out = Some(PathBuf::from(v));
                } else if let Some(v) = arg.strip_prefix("--span-out=") {
                    span_out = Some(PathBuf::from(v));
                } else if let Some(v) = arg.strip_prefix("--span-sample=")
                {
                    span_rate = v.parse().unwrap_or(0.0);
                } else if let Some(v) = arg.strip_prefix("--span-seed=") {
                    span_seed = v.parse().unwrap_or(span_seed);
                }
                // Anything else belongs to the binary itself.
            }
        }
    }
    let on = metrics_out.is_some()
        || trace_out.is_some()
        || span_out.is_some();
    femux_obs::set_enabled(on);
    // The span table is carved out of the event stream, so `--span-out`
    // turns event recording on even without a full `--trace-out`.
    femux_obs::set_events(trace_out.is_some() || span_out.is_some());
    femux_obs::set_profiling(on && profile);
    // Rate 0 leaves the ambient config unset: the span layer is
    // compiled out of the run and output is byte-identical to a build
    // without it.
    femux_obs::span::set_ambient(if span_rate > 0.0 {
        Some(femux_obs::span::SpanConfig {
            rate: span_rate,
            seed: span_seed,
        })
    } else {
        None
    });
    if on {
        // Start from a clean slate (tests or earlier sessions).
        drop(femux_obs::collect());
    }
    ObsSession {
        metrics_out,
        trace_out,
        span_out,
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        femux_obs::span::set_ambient(None);
        if self.metrics_out.is_none()
            && self.trace_out.is_none()
            && self.span_out.is_none()
        {
            return;
        }
        let report = femux_obs::collect();
        if let Some(path) = &self.metrics_out {
            match std::fs::write(path, report.metrics_json()) {
                Ok(()) => eprintln!("metrics: {}", path.display()),
                Err(e) => {
                    eprintln!("metrics: write {} failed: {e}", path.display())
                }
            }
        }
        if let Some(path) = &self.trace_out {
            match std::fs::write(path, report.chrome_trace_json()) {
                Ok(()) => eprintln!(
                    "trace: {} ({} events)",
                    path.display(),
                    report.events.len()
                ),
                Err(e) => {
                    eprintln!("trace: write {} failed: {e}", path.display())
                }
            }
        }
        if let Some(path) = &self.span_out {
            let table = report.span_table_json();
            match std::fs::write(path, &table) {
                Ok(()) => eprintln!(
                    "spans: {} ({} sampled)",
                    path.display(),
                    table.lines().count()
                ),
                Err(e) => {
                    eprintln!("spans: write {} failed: {e}", path.display())
                }
            }
        }
        femux_obs::set_enabled(false);
        femux_obs::set_events(false);
        femux_obs::set_profiling(false);
    }
}

#[cfg(test)]
impl ObsSession {
    fn disarm_for_tests(mut self) {
        self.metrics_out = None;
        self.trace_out = None;
        self.span_out = None;
        femux_obs::set_enabled(false);
        femux_obs::set_events(false);
        femux_obs::set_profiling(false);
        femux_obs::span::set_ambient(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the process-global obs switches.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parses_both_flag_forms_and_ignores_others() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let s = from_args(
            [
                "--foo",
                "--metrics-out",
                "/tmp/m.json",
                "--trace-out=/tmp/t.json",
                "bar",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(s.metrics_out.as_deref(), Some("/tmp/m.json".as_ref()));
        assert_eq!(s.trace_out.as_deref(), Some("/tmp/t.json".as_ref()));
        assert!(femux_obs::enabled());
        assert!(femux_obs::events_enabled());
        assert!(!femux_obs::profiling());
        // Disarm without writing: the paths are for a later run.
        s.disarm_for_tests();
    }

    #[test]
    fn no_flags_means_inert() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let s = from_args(std::iter::empty());
        assert!(s.metrics_out.is_none() && s.trace_out.is_none());
        assert!(femux_obs::span::ambient().is_none());
        drop(s);
        assert!(!femux_obs::enabled());
    }

    #[test]
    fn span_flags_set_the_ambient_config_and_enable_events() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let s = from_args(
            ["--span-sample", "0.25", "--span-seed=7", "--span-out=/tmp/s.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(s.span_out.as_deref(), Some("/tmp/s.jsonl".as_ref()));
        assert_eq!(
            femux_obs::span::ambient(),
            Some(femux_obs::span::SpanConfig { rate: 0.25, seed: 7 })
        );
        assert!(femux_obs::enabled());
        assert!(femux_obs::events_enabled());
        s.disarm_for_tests();
    }

    #[test]
    fn span_rate_zero_leaves_the_layer_compiled_out() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let s = from_args(
            ["--span-sample", "0"].iter().map(|s| s.to_string()),
        );
        assert!(femux_obs::span::ambient().is_none());
        assert!(!femux_obs::enabled());
        s.disarm_for_tests();
    }
}

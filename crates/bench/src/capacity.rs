//! Capacity-model evaluation of policies over the test split.
//!
//! The paper's §5.1 simulations (and its public artifact) evaluate
//! lifetime policies on the *average-concurrency capacity model*: per
//! minute, a policy provisions pods; shortfalls are reactive pod cold
//! starts, idle capacity is waste. This module runs FeMux and
//! single-forecaster deployments through exactly the cost model used to
//! label training blocks, keeping training and evaluation aligned (the
//! point of RUM).

use std::sync::Arc;

use femux::label::{capacity_costs, strided_forecast, AppParams};
use femux::manager::AppManager;
use femux::model::{FemuxModel, TrainApp};
use femux_forecast::ForecasterKind;
use femux_rum::CostRecord;

/// Evaluates one application under a fixed single forecaster.
pub fn eval_single_forecaster(
    app: &TrainApp,
    kind: ForecasterKind,
    history: usize,
    stride: usize,
    cold_start_secs: f64,
) -> CostRecord {
    let params = AppParams {
        mem_gb: app.mem_gb,
        pod_concurrency: app.pod_concurrency.max(1) as f64,
        exec_secs: app.exec_secs,
        step_secs: 60.0,
        cold_start_secs,
    };
    if app.concurrency.len() <= history {
        return CostRecord::default();
    }
    let forecast =
        strided_forecast(kind, &app.concurrency, history, stride);
    capacity_costs(&forecast, &app.concurrency[history..], &params)
}

/// Evaluates one application under the full FeMux manager (block
/// classification + forecaster switching), one step at a time.
pub fn eval_femux(
    app: &TrainApp,
    model: &Arc<FemuxModel>,
    cold_start_secs: f64,
) -> CostRecord {
    let params = AppParams {
        mem_gb: app.mem_gb,
        pod_concurrency: app.pod_concurrency.max(1) as f64,
        exec_secs: app.exec_secs,
        step_secs: 60.0,
        cold_start_secs,
    };
    let history = model.cfg.history;
    if app.concurrency.len() <= history {
        return CostRecord::default();
    }
    let mut manager = AppManager::new(model.clone(), app.exec_secs);
    let mut forecast = Vec::with_capacity(app.concurrency.len() - history);
    for (t, &v) in app.concurrency.iter().enumerate() {
        if t >= history {
            forecast.push(manager.forecast(1)[0]);
        }
        manager.observe(v);
    }
    capacity_costs(&forecast, &app.concurrency[history..], &params)
}

/// Evaluates a whole test split under FeMux, returning per-app records.
///
/// Applications are independent, so the sweep fans out across
/// `FEMUX_THREADS` workers; records come back in app order regardless
/// of thread count.
pub fn eval_femux_fleet(
    apps: &[TrainApp],
    model: &Arc<FemuxModel>,
    cold_start_secs: f64,
) -> Vec<CostRecord> {
    femux_par::par_map(apps, |_, a| eval_femux(a, model, cold_start_secs))
}

/// Evaluates a whole test split under a single forecaster (parallel
/// over apps, app-ordered output).
pub fn eval_forecaster_fleet(
    apps: &[TrainApp],
    kind: ForecasterKind,
    history: usize,
    stride: usize,
    cold_start_secs: f64,
) -> Vec<CostRecord> {
    femux_par::par_map(apps, |_, a| {
        eval_single_forecaster(a, kind, history, stride, cold_start_secs)
    })
}

/// A keep-alive policy on the capacity model: provisions the peak
/// concurrency of the trailing `window` steps (and therefore never pays
/// a cold start while the window has traffic).
pub fn eval_keepalive(
    app: &TrainApp,
    window: usize,
    history: usize,
    cold_start_secs: f64,
) -> CostRecord {
    let params = AppParams {
        mem_gb: app.mem_gb,
        pod_concurrency: app.pod_concurrency.max(1) as f64,
        exec_secs: app.exec_secs,
        step_secs: 60.0,
        cold_start_secs,
    };
    if app.concurrency.len() <= history {
        return CostRecord::default();
    }
    let forecast: Vec<f64> = (history..app.concurrency.len())
        .map(|t| {
            let lo = t.saturating_sub(window);
            app.concurrency[lo..t]
                .iter()
                .fold(0.0f64, |a, &b| a.max(b))
        })
        .collect();
    capacity_costs(&forecast, &app.concurrency[history..], &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux::config::FemuxConfig;
    use femux::model::{train, ClassifierKind};

    fn periodic_app(len: usize) -> TrainApp {
        TrainApp {
            concurrency: (0..len)
                .map(|t| {
                    3.0 + 2.0
                        * (2.0 * std::f64::consts::PI * t as f64 / 30.0)
                            .sin()
                })
                .collect(),
            exec_secs: 0.5,
            mem_gb: 0.25,
            pod_concurrency: 1,
        }
    }

    #[test]
    fn femux_eval_matches_label_model_for_default_forecaster() {
        // With a single-forecaster "set", FeMux must reproduce the
        // single-forecaster evaluation exactly (same cost model).
        let cfg = FemuxConfig {
            block_len: 120,
            history: 60,
            label_stride: 1,
            forecasters: vec![ForecasterKind::Ses],
            ..FemuxConfig::for_tests()
        };
        let apps = vec![periodic_app(600)];
        let model = Arc::new(
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model"),
        );
        let femux_costs = eval_femux(&apps[0], &model, 0.808);
        let single = eval_single_forecaster(
            &apps[0],
            ForecasterKind::Ses,
            cfg.history,
            1,
            0.808,
        );
        assert!(
            (femux_costs.cold_start_seconds - single.cold_start_seconds)
                .abs()
                < 1e-9
        );
        assert!(
            (femux_costs.wasted_gb_seconds - single.wasted_gb_seconds)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn keepalive_peak_has_few_cold_starts() {
        let app = periodic_app(600);
        let ka = eval_keepalive(&app, 10, 60, 0.808);
        let naive = eval_single_forecaster(
            &app,
            ForecasterKind::Naive,
            60,
            1,
            0.808,
        );
        assert!(ka.cold_starts <= naive.cold_starts);
        assert!(ka.wasted_gb_seconds >= naive.wasted_gb_seconds * 0.5);
    }

    #[test]
    fn short_apps_yield_empty_records() {
        let app = TrainApp {
            concurrency: vec![1.0; 10],
            exec_secs: 1.0,
            mem_gb: 1.0,
            pod_concurrency: 1,
        };
        let c = eval_single_forecaster(
            &app,
            ForecasterKind::Naive,
            60,
            1,
            0.808,
        );
        assert_eq!(c, CostRecord::default());
    }
}

//! Plain-text table and series printers for experiment output.
//!
//! Experiment binaries print the same rows/series the paper's figures
//! plot; these helpers keep the formatting uniform and parseable.

/// Prints a titled table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> =
        headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (cell, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Prints an `(x, y)` series as two aligned columns — one plot line.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("\n-- series: {name} --");
    for (x, y) in points {
        println!("{x:>14.6}  {y:>14.6}");
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with 1 decimal from a fraction.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a ratio as a percentage change relative to a baseline
/// (negative = reduction).
pub fn delta_pct(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", 100.0 * (value - baseline) / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.4567), "45.7%");
        assert_eq!(delta_pct(80.0, 100.0), "-20.0%");
        assert_eq!(delta_pct(1.0, 0.0), "n/a");
    }

    #[test]
    fn printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()]],
        );
        print_series("s", &[(1.0, 2.0)]);
    }
}

//! Forecasting-state persistence (the prototype's etcd role).
//!
//! §5.2: "we deploy a horizontal pod scaler to manage scaling FeMux
//! pods, and use etcd to persist threads' states" — when a FeMux pod is
//! rescheduled, its applications' forecasting state (history window,
//! current forecaster, block progress) must survive. [`StateStore`] is a
//! versioned, thread-safe key-value store standing in for etcd, plus a
//! text codec for [`ManagerSnapshot`] so the stored values are plain
//! strings as they would be in etcd.
//!
//! A pod can die mid-write, and storage can rot: the `v2` codec guards
//! the payload with an FNV-1a 64 checksum so truncation and bit flips
//! are *detected* (decode returns `None`) rather than silently restored
//! as garbage. [`StateStore::put_snapshot`] keeps the previous valid
//! value under a `#prev` backup key, and
//! [`StateStore::recover_snapshot`] falls back to it when the primary
//! is damaged — crash recovery lands on the last good snapshot instead
//! of panicking or losing the app's history entirely.

use std::collections::BTreeMap;

use femux::manager::ManagerSnapshot;
use femux_forecast::ForecasterKind;
use parking_lot::RwLock;

/// A versioned in-memory key-value store (etcd stand-in).
///
/// Keys are ordered (as in etcd, whose keyspace is a sorted byte
/// range): enumeration such as [`StateStore::keys`] is deterministic,
/// so snapshot/restore tooling built on it replays identically.
#[derive(Debug, Default)]
pub struct StateStore {
    inner: RwLock<BTreeMap<String, (u64, String)>>,
}

impl StateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StateStore::default()
    }

    /// Writes a value, returning the new revision for the key.
    pub fn put(&self, key: &str, value: String) -> u64 {
        femux_obs::counter_add("knative.statestore.puts", 1);
        let mut map = self.inner.write();
        let rev = map.get(key).map(|(r, _)| r + 1).unwrap_or(1);
        map.insert(key.to_string(), (rev, value));
        rev
    }

    /// Reads the latest value and its revision.
    pub fn get(&self, key: &str) -> Option<(u64, String)> {
        femux_obs::counter_add("knative.statestore.gets", 1);
        self.inner.read().get(key).cloned()
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.write().remove(key).is_some()
    }

    /// Returns all keys in sorted order (etcd-style range listing) —
    /// the enumeration a rescheduled FeMux pod uses to restore every
    /// application state deterministically.
    pub fn keys(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Compare-and-swap: writes only if the current revision matches
    /// `expected_rev` (0 = key must not exist). Returns the new revision
    /// on success.
    pub fn cas(
        &self,
        key: &str,
        expected_rev: u64,
        value: String,
    ) -> Result<u64, u64> {
        let mut map = self.inner.write();
        let current = map.get(key).map(|(r, _)| *r).unwrap_or(0);
        if current != expected_rev {
            return Err(current);
        }
        let rev = current + 1;
        map.insert(key.to_string(), (rev, value));
        Ok(rev)
    }

    /// Persists a snapshot under `key`, first preserving the current
    /// value — if it still decodes — under the `#prev` backup key so a
    /// corrupted write can be recovered from.
    pub fn put_snapshot(
        &self,
        key: &str,
        snap: &ManagerSnapshot,
    ) -> u64 {
        if let Some((_, current)) = self.get(key) {
            if decode_snapshot(&current).is_some() {
                self.put(&backup_key(key), current);
            }
        }
        self.put(key, encode_snapshot(snap))
    }

    /// Reads a snapshot back, falling back to the `#prev` backup when
    /// the primary value is missing or fails its integrity check.
    /// Returns `None` only when no stored value decodes.
    pub fn recover_snapshot(&self, key: &str) -> Option<ManagerSnapshot> {
        if let Some((_, text)) = self.get(key) {
            if let Some(snap) = decode_snapshot(&text) {
                return Some(snap);
            }
            femux_obs::counter_add(
                "knative.statestore.corruption_detected",
                1,
            );
        }
        let (_, prev) = self.get(&backup_key(key))?;
        let snap = decode_snapshot(&prev)?;
        femux_obs::counter_add(
            "knative.statestore.recovered_from_backup",
            1,
        );
        Some(snap)
    }
}

fn backup_key(key: &str) -> String {
    format!("{key}#prev")
}

/// FNV-1a 64-bit hash of the snapshot body — cheap, dependency-free,
/// and plenty to catch truncation and bit rot (this is an integrity
/// check, not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Encodes a snapshot as a line-oriented string value (`v2`: a `crc=`
/// line protects everything after it).
pub fn encode_snapshot(snap: &ManagerSnapshot) -> String {
    let kinds: Vec<&str> = snap
        .history_of_kinds
        .iter()
        .map(|k| k.name())
        .collect();
    let series: Vec<String> =
        snap.series.iter().map(|v| format!("{v:.9}")).collect();
    let body = format!(
        "current={}\nnext_block_end={}\nexec_secs={}\nhistory={}\nseries={}",
        snap.current.name(),
        snap.next_block_end,
        snap.exec_secs,
        kinds.join(","),
        series.join(",")
    );
    format!("v2\ncrc={:016x}\n{body}", fnv1a64(body.as_bytes()))
}

fn parse_kind(name: &str) -> Option<ForecasterKind> {
    ForecasterKind::ALL.into_iter().find(|k| k.name() == name)
}

/// Decodes a snapshot encoded by [`encode_snapshot`]. Accepts the
/// legacy checksum-less `v1` layout (values written before the codec
/// change) and the checksummed `v2`; any checksum mismatch is counted
/// in `knative.statestore.crc_mismatches` and decodes to `None`.
pub fn decode_snapshot(text: &str) -> Option<ManagerSnapshot> {
    let (version, rest) = text.split_once('\n')?;
    match version {
        "v1" => decode_body(rest),
        "v2" => {
            let (crc_line, body) = rest.split_once('\n')?;
            let crc = u64::from_str_radix(
                crc_line.strip_prefix("crc=")?,
                16,
            )
            .ok()?;
            if fnv1a64(body.as_bytes()) != crc {
                femux_obs::counter_add(
                    "knative.statestore.crc_mismatches",
                    1,
                );
                return None;
            }
            decode_body(body)
        }
        _ => None,
    }
}

fn decode_body(body: &str) -> Option<ManagerSnapshot> {
    let mut current = None;
    let mut next_block_end = None;
    let mut exec_secs = None;
    let mut history = None;
    let mut series = None;
    for line in body.lines() {
        let (key, value) = line.split_once('=')?;
        match key {
            "current" => current = parse_kind(value),
            "next_block_end" => next_block_end = value.parse().ok(),
            "exec_secs" => exec_secs = value.parse().ok(),
            "history" => {
                history = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(parse_kind)
                    .collect::<Option<Vec<_>>>();
            }
            "series" => {
                series = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse::<f64>().ok())
                    .collect::<Option<Vec<_>>>();
            }
            _ => return None,
        }
    }
    Some(ManagerSnapshot {
        series: series.unwrap_or_default(),
        current: current?,
        history_of_kinds: history.unwrap_or_default(),
        next_block_end: next_block_end?,
        exec_secs: exec_secs?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ManagerSnapshot {
        ManagerSnapshot {
            series: vec![0.0, 1.5, 2.25, 0.125],
            current: ForecasterKind::Markov,
            history_of_kinds: vec![
                ForecasterKind::Ses,
                ForecasterKind::Markov,
            ],
            next_block_end: 240,
            exec_secs: 0.5,
        }
    }

    #[test]
    fn codec_round_trip() {
        let snap = snapshot();
        let text = encode_snapshot(&snap);
        let back = decode_snapshot(&text).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(decode_snapshot("").is_none());
        assert!(decode_snapshot("v2\ncurrent=ar").is_none());
        assert!(decode_snapshot("v1\ncurrent=warp-drive").is_none());
    }

    #[test]
    fn store_versions_and_cas() {
        let store = StateStore::new();
        assert!(store.is_empty());
        let r1 = store.put("app-1", "a".into());
        let r2 = store.put("app-1", "b".into());
        assert_eq!((r1, r2), (1, 2));
        assert_eq!(store.get("app-1"), Some((2, "b".into())));
        // Stale CAS fails and reports the real revision.
        assert_eq!(store.cas("app-1", 1, "c".into()), Err(2));
        assert_eq!(store.cas("app-1", 2, "c".into()), Ok(3));
        // CAS-create semantics.
        assert_eq!(store.cas("app-2", 0, "x".into()), Ok(1));
        assert_eq!(store.len(), 2);
        assert!(store.delete("app-2"));
        assert!(!store.delete("app-2"));
    }

    #[test]
    fn keys_enumerate_in_sorted_order() {
        let store = StateStore::new();
        for key in ["apps/9", "apps/1", "apps/5"] {
            store.put(key, "v".into());
        }
        // Insertion order differs from key order; enumeration must be
        // sorted regardless, like an etcd range read.
        assert_eq!(store.keys(), vec!["apps/1", "apps/5", "apps/9"]);
    }

    #[test]
    fn legacy_v1_values_still_decode() {
        let snap = snapshot();
        // The exact layout the pre-checksum codec wrote.
        let text = "v1\ncurrent=markov\nnext_block_end=240\n\
                    exec_secs=0.5\nhistory=exp-smoothing,markov\n\
                    series=0.000000000,1.500000000,2.250000000,0.125000000";
        assert_eq!(decode_snapshot(text), Some(snap));
    }

    #[test]
    fn truncation_is_detected_at_every_cut_point() {
        let text = encode_snapshot(&snapshot());
        for cut in 0..text.len() {
            assert!(
                decode_snapshot(&text[..cut]).is_none(),
                "truncation at byte {cut} must not decode"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected_at_every_byte() {
        let text = encode_snapshot(&snapshot());
        for i in 0..text.len() {
            let mut bytes = text.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            let corrupted = String::from_utf8(bytes)
                .expect("ascii stays ascii under a low-bit flip");
            assert!(
                decode_snapshot(&corrupted).is_none(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn recovery_falls_back_to_last_good_snapshot() {
        let store = StateStore::new();
        let old = snapshot();
        let mut new = snapshot();
        new.series.push(9.75);
        new.next_block_end = 480;
        store.put_snapshot("apps/7", &old);
        store.put_snapshot("apps/7", &new);

        // Healthy primary wins.
        assert_eq!(store.recover_snapshot("apps/7"), Some(new.clone()));

        // Truncated primary (crash mid-write): recover the backup.
        let (_, text) = store.get("apps/7").expect("stored");
        store.put("apps/7", text[..text.len() / 2].to_string());
        assert_eq!(store.recover_snapshot("apps/7"), Some(old.clone()));

        // Bit-rotted primary: same story.
        let mut bytes = text.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        store.put(
            "apps/7",
            String::from_utf8(bytes).expect("ascii"),
        );
        assert_eq!(store.recover_snapshot("apps/7"), Some(old));

        // Corrupt primary and no backup: detected, not a panic.
        store.put("apps/9", "v2\ncrc=0000000000000000\njunk".into());
        assert_eq!(store.recover_snapshot("apps/9"), None);
        // A corrupt write never clobbers the backup of a good one.
        store.put_snapshot("apps/9", &snapshot());
        assert_eq!(store.recover_snapshot("apps/9"), Some(snapshot()));
    }

    #[test]
    fn snapshot_survives_pod_reschedule() {
        // Manager state written by one "pod" restores on another.
        let store = StateStore::new();
        let snap = snapshot();
        store.put("apps/42", encode_snapshot(&snap));
        let (_, text) = store.get("apps/42").expect("persisted");
        let restored = decode_snapshot(&text).expect("decodes");
        assert_eq!(restored, snap);
    }
}

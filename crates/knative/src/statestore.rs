//! Forecasting-state persistence (the prototype's etcd role).
//!
//! §5.2: "we deploy a horizontal pod scaler to manage scaling FeMux
//! pods, and use etcd to persist threads' states" — when a FeMux pod is
//! rescheduled, its applications' forecasting state (history window,
//! current forecaster, block progress) must survive. [`StateStore`] is a
//! versioned, thread-safe key-value store standing in for etcd, plus a
//! text codec for [`ManagerSnapshot`] so the stored values are plain
//! strings as they would be in etcd.

use std::collections::BTreeMap;

use femux::manager::ManagerSnapshot;
use femux_forecast::ForecasterKind;
use parking_lot::RwLock;

/// A versioned in-memory key-value store (etcd stand-in).
///
/// Keys are ordered (as in etcd, whose keyspace is a sorted byte
/// range): enumeration such as [`StateStore::keys`] is deterministic,
/// so snapshot/restore tooling built on it replays identically.
#[derive(Debug, Default)]
pub struct StateStore {
    inner: RwLock<BTreeMap<String, (u64, String)>>,
}

impl StateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StateStore::default()
    }

    /// Writes a value, returning the new revision for the key.
    pub fn put(&self, key: &str, value: String) -> u64 {
        femux_obs::counter_add("knative.statestore.puts", 1);
        let mut map = self.inner.write();
        let rev = map.get(key).map(|(r, _)| r + 1).unwrap_or(1);
        map.insert(key.to_string(), (rev, value));
        rev
    }

    /// Reads the latest value and its revision.
    pub fn get(&self, key: &str) -> Option<(u64, String)> {
        femux_obs::counter_add("knative.statestore.gets", 1);
        self.inner.read().get(key).cloned()
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.write().remove(key).is_some()
    }

    /// Returns all keys in sorted order (etcd-style range listing) —
    /// the enumeration a rescheduled FeMux pod uses to restore every
    /// application state deterministically.
    pub fn keys(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Compare-and-swap: writes only if the current revision matches
    /// `expected_rev` (0 = key must not exist). Returns the new revision
    /// on success.
    pub fn cas(
        &self,
        key: &str,
        expected_rev: u64,
        value: String,
    ) -> Result<u64, u64> {
        let mut map = self.inner.write();
        let current = map.get(key).map(|(r, _)| *r).unwrap_or(0);
        if current != expected_rev {
            return Err(current);
        }
        let rev = current + 1;
        map.insert(key.to_string(), (rev, value));
        Ok(rev)
    }
}

/// Encodes a snapshot as a line-oriented string value.
pub fn encode_snapshot(snap: &ManagerSnapshot) -> String {
    let kinds: Vec<&str> = snap
        .history_of_kinds
        .iter()
        .map(|k| k.name())
        .collect();
    let series: Vec<String> =
        snap.series.iter().map(|v| format!("{v:.9}")).collect();
    format!(
        "v1\ncurrent={}\nnext_block_end={}\nexec_secs={}\nhistory={}\nseries={}",
        snap.current.name(),
        snap.next_block_end,
        snap.exec_secs,
        kinds.join(","),
        series.join(",")
    )
}

fn parse_kind(name: &str) -> Option<ForecasterKind> {
    ForecasterKind::ALL.into_iter().find(|k| k.name() == name)
}

/// Decodes a snapshot encoded by [`encode_snapshot`].
pub fn decode_snapshot(text: &str) -> Option<ManagerSnapshot> {
    let mut lines = text.lines();
    if lines.next()? != "v1" {
        return None;
    }
    let mut current = None;
    let mut next_block_end = None;
    let mut exec_secs = None;
    let mut history = None;
    let mut series = None;
    for line in lines {
        let (key, value) = line.split_once('=')?;
        match key {
            "current" => current = parse_kind(value),
            "next_block_end" => next_block_end = value.parse().ok(),
            "exec_secs" => exec_secs = value.parse().ok(),
            "history" => {
                history = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(parse_kind)
                    .collect::<Option<Vec<_>>>();
            }
            "series" => {
                series = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse::<f64>().ok())
                    .collect::<Option<Vec<_>>>();
            }
            _ => return None,
        }
    }
    Some(ManagerSnapshot {
        series: series.unwrap_or_default(),
        current: current?,
        history_of_kinds: history.unwrap_or_default(),
        next_block_end: next_block_end?,
        exec_secs: exec_secs?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ManagerSnapshot {
        ManagerSnapshot {
            series: vec![0.0, 1.5, 2.25, 0.125],
            current: ForecasterKind::Markov,
            history_of_kinds: vec![
                ForecasterKind::Ses,
                ForecasterKind::Markov,
            ],
            next_block_end: 240,
            exec_secs: 0.5,
        }
    }

    #[test]
    fn codec_round_trip() {
        let snap = snapshot();
        let text = encode_snapshot(&snap);
        let back = decode_snapshot(&text).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(decode_snapshot("").is_none());
        assert!(decode_snapshot("v2\ncurrent=ar").is_none());
        assert!(decode_snapshot("v1\ncurrent=warp-drive").is_none());
    }

    #[test]
    fn store_versions_and_cas() {
        let store = StateStore::new();
        assert!(store.is_empty());
        let r1 = store.put("app-1", "a".into());
        let r2 = store.put("app-1", "b".into());
        assert_eq!((r1, r2), (1, 2));
        assert_eq!(store.get("app-1"), Some((2, "b".into())));
        // Stale CAS fails and reports the real revision.
        assert_eq!(store.cas("app-1", 1, "c".into()), Err(2));
        assert_eq!(store.cas("app-1", 2, "c".into()), Ok(3));
        // CAS-create semantics.
        assert_eq!(store.cas("app-2", 0, "x".into()), Ok(1));
        assert_eq!(store.len(), 2);
        assert!(store.delete("app-2"));
        assert!(!store.delete("app-2"));
    }

    #[test]
    fn keys_enumerate_in_sorted_order() {
        let store = StateStore::new();
        for key in ["apps/9", "apps/1", "apps/5"] {
            store.put(key, "v".into());
        }
        // Insertion order differs from key order; enumeration must be
        // sorted regardless, like an etcd range read.
        assert_eq!(store.keys(), vec!["apps/1", "apps/5", "apps/9"]);
    }

    #[test]
    fn snapshot_survives_pod_reschedule() {
        // Manager state written by one "pod" restores on another.
        let store = StateStore::new();
        let snap = snapshot();
        store.put("apps/42", encode_snapshot(&snap));
        let (_, text) = store.get("apps/42").expect("persisted");
        let restored = decode_snapshot(&text).expect("decodes");
        assert_eq!(restored, snap);
    }
}

//! Knative Pod Autoscaler (KPA) model.
//!
//! Knative Serving's default autoscaler (Fig. 13 of the paper) makes a
//! scaling decision every 2 seconds from queue-proxy concurrency
//! reports: the *stable* target averages concurrency over a 60-second
//! window; a 6-second *panic* window overrides it when short-term demand
//! at least doubles the stable target, and pods are never scaled down
//! while panicking. Scale-to-zero happens only after a grace period
//! (default 60 s, matching the paper's "1-minute KA" description of
//! Knative's default lifetime policy).
//!
//! The policy plugs into the `femux-sim` engine with a 2-second interval
//! — the simulator's ticks play the role of the autoscaler loop, and its
//! per-interval average concurrency plays the queue-proxy reports.
//!
//! Queue-proxy reports can go missing in production (the `femux-fault`
//! layer models this as a `NaN` sample). The policy tolerates that two
//! ways: windows average over finite samples only, and a tick whose
//! newest report is missing *holds the last stable target* instead of
//! recomputing from a gappy window (counted in
//! `knative.kpa.held_targets`).

use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

/// KPA tuning parameters (Knative defaults).
#[derive(Debug, Clone)]
pub struct KpaConfig {
    /// Autoscaler tick, ms (2 s).
    pub tick_ms: u64,
    /// Stable window, ms (60 s).
    pub stable_window_ms: u64,
    /// Panic window, ms (6 s).
    pub panic_window_ms: u64,
    /// Panic entry threshold: panic when
    /// `panic_concurrency >= threshold * stable_target_capacity`.
    pub panic_threshold: f64,
    /// Scale-to-zero grace period, ms (60 s).
    pub scale_to_zero_grace_ms: u64,
    /// Fraction of the container-concurrency limit the autoscaler
    /// targets per pod (Knative's container-concurrency-target-fraction,
    /// default 0.7).
    pub target_utilization: f64,
}

impl Default for KpaConfig {
    fn default() -> Self {
        KpaConfig {
            tick_ms: 2_000,
            stable_window_ms: 60_000,
            panic_window_ms: 6_000,
            panic_threshold: 2.0,
            scale_to_zero_grace_ms: 60_000,
            target_utilization: 0.7,
        }
    }
}

/// The KPA scaling policy.
#[derive(Debug, Clone)]
pub struct KpaPolicy {
    cfg: KpaConfig,
    /// Time we have continuously been panicking since, if any.
    panicking_since: Option<u64>,
    /// Pod target while panicking (never decreased during panic).
    panic_pods: usize,
    /// Last time non-zero demand was observed.
    last_activity_ms: u64,
    /// Target decided on the last tick with a usable report — held when
    /// the current report is missing.
    last_target: usize,
}

impl KpaPolicy {
    /// Creates a KPA policy.
    pub fn new(cfg: KpaConfig) -> Self {
        KpaPolicy {
            cfg,
            panicking_since: None,
            panic_pods: 0,
            last_activity_ms: 0,
            last_target: 0,
        }
    }

    /// Returns whether the policy is currently in panic mode.
    pub fn is_panicking(&self) -> bool {
        self.panicking_since.is_some()
    }

    /// Average over the trailing window, counting finite samples only —
    /// lost reports (`NaN`) neither poison nor dilute the average.
    fn window_avg(&self, series: &[f64], window_ms: u64) -> f64 {
        let ticks = (window_ms / self.cfg.tick_ms).max(1) as usize;
        let start = series.len().saturating_sub(ticks);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in &series[start..] {
            if v.is_finite() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl ScalingPolicy for KpaPolicy {
    fn name(&self) -> String {
        "knative-kpa".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("knative.kpa.ticks", 1);
        // No fresh queue-proxy report this tick: hold the last stable
        // decision rather than re-deciding from a window missing its
        // newest point.
        if matches!(ctx.avg_concurrency.last(), Some(v) if !v.is_finite())
        {
            femux_obs::counter_add("knative.kpa.held_targets", 1);
            return self.last_target;
        }
        let target = self.decide(ctx);
        self.last_target = target;
        target
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        if !self.stable_window_all_zero(ctx.avg_concurrency) {
            // Live samples still inside the stable window: per-tick.
            return IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            };
        }
        // An all-zero stable window (the panic window sits inside it)
        // with nothing in flight: `decide` sees stable = panic = 0 and
        // no fresh activity, at this tick and at every later tick of
        // the stretch. Each branch below advances the corresponding
        // per-tick decisions in closed form, counters included.
        let step = ctx.interval_ms;
        if let Some(since) = self.panicking_since {
            let deadline = since + self.cfg.stable_window_ms;
            if ctx.now_ms > deadline {
                // Panic-exit tick (state reset): per-tick.
                return IdleRun {
                    target: self.target_pods(&ctx),
                    ticks: 1,
                };
            }
            // Panic mode without re-triggering holds `panic_pods` until
            // a full stable window has passed since entry.
            let k =
                ((deadline - ctx.now_ms) / step + 1).min(max_ticks);
            femux_obs::counter_add("knative.kpa.ticks", k);
            self.last_target = self.panic_pods;
            return IdleRun {
                target: self.panic_pods,
                ticks: k,
            };
        }
        let grace_end =
            self.last_activity_ms + self.cfg.scale_to_zero_grace_ms;
        if ctx.now_ms < grace_end && current_pods > 0 {
            // Scale-to-zero grace: hold one pod until the grace lapses.
            // The implied trajectory is rate-limit-immune (1 ≤ current
            // pods), so `current_pods > 0` holds for the whole run.
            let k = (grace_end - ctx.now_ms)
                .div_ceil(step)
                .min(max_ticks);
            femux_obs::counter_add("knative.kpa.ticks", k);
            self.last_target = 1;
            return IdleRun { target: 1, ticks: k };
        }
        self.last_target = 0;
        if current_pods == 0 {
            femux_obs::counter_add("knative.kpa.ticks", max_ticks);
            return IdleRun {
                target: 0,
                ticks: max_ticks,
            };
        }
        if idle.min_pods > 0 {
            // The engine floor keeps pods above zero, so every tick of
            // the stretch records a scale-to-zero decision.
            femux_obs::counter_add("knative.kpa.ticks", max_ticks);
            femux_obs::counter_add(
                "knative.kpa.scale_to_zero_decisions",
                max_ticks,
            );
            return IdleRun {
                target: 0,
                ticks: max_ticks,
            };
        }
        // Pods drop to zero right after this tick; later ticks take the
        // `current_pods == 0` arm above.
        femux_obs::counter_add("knative.kpa.ticks", 1);
        femux_obs::counter_add("knative.kpa.scale_to_zero_decisions", 1);
        IdleRun { target: 0, ticks: 1 }
    }
}

impl KpaPolicy {
    /// True when every sample of the trailing stable window is exactly
    /// zero (no live and no lost reports) — the precondition for any
    /// closed-form idle advance.
    pub(crate) fn stable_window_all_zero(&self, series: &[f64]) -> bool {
        let window = (self.cfg.stable_window_ms / self.cfg.tick_ms)
            .max(1) as usize;
        let start = series.len().saturating_sub(window);
        series[start..].iter().all(|&v| v == 0.0)
    }

    /// True when the policy is fully settled for scale-to-zero at
    /// `now_ms`: not panicking and past the grace period, so `decide`
    /// returns 0 with no state change — the deep-idle fixed point.
    pub(crate) fn settled_for_zero(&self, now_ms: u64) -> bool {
        self.panicking_since.is_none()
            && now_ms.saturating_sub(self.last_activity_ms)
                >= self.cfg.scale_to_zero_grace_ms
    }

    /// Advances `k` settled scale-to-zero ticks at a constant pod count
    /// in closed form: exactly the counters and state that `k` per-tick
    /// [`ScalingPolicy::target_pods`] calls would produce in that fixed
    /// point. Returns the per-tick reactive target (0).
    pub(crate) fn skip_settled_ticks(
        &mut self,
        k: u64,
        pods_const: usize,
    ) -> usize {
        femux_obs::counter_add("knative.kpa.ticks", k);
        if pods_const > 0 {
            femux_obs::counter_add(
                "knative.kpa.scale_to_zero_decisions",
                k,
            );
        }
        self.last_target = 0;
        0
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let per_pod = (ctx.config.concurrency as f64
            * self.cfg.target_utilization)
            .max(1.0);
        let stable =
            self.window_avg(ctx.avg_concurrency, self.cfg.stable_window_ms);
        let panic_avg =
            self.window_avg(ctx.avg_concurrency, self.cfg.panic_window_ms);
        let stable_pods = (stable / per_pod).ceil() as usize;
        let panic_pods_wanted = (panic_avg / per_pod).ceil() as usize;

        if stable > 0.0 || ctx.inflight > 0 {
            self.last_activity_ms = ctx.now_ms;
        }

        // Enter/exit panic mode.
        let panic_trigger = panic_avg
            >= self.cfg.panic_threshold * stable_pods.max(1) as f64 * per_pod
            && panic_pods_wanted > stable_pods;
        if panic_trigger {
            if self.panicking_since.is_none() {
                femux_obs::counter_add("knative.kpa.panic_enters", 1);
                self.panicking_since = Some(ctx.now_ms);
                self.panic_pods = ctx.current_pods.max(1);
            }
            self.panic_pods = self.panic_pods.max(panic_pods_wanted);
        } else if let Some(since) = self.panicking_since {
            // Leave panic after one stable window without re-triggering.
            if ctx.now_ms.saturating_sub(since) > self.cfg.stable_window_ms
            {
                femux_obs::counter_add("knative.kpa.panic_exits", 1);
                self.panicking_since = None;
                self.panic_pods = 0;
            }
        }
        if self.panicking_since.is_some() {
            return self.panic_pods.max(stable_pods);
        }

        if stable_pods == 0 {
            // Scale to zero only after the grace period.
            let idle_ms = ctx.now_ms.saturating_sub(self.last_activity_ms);
            if idle_ms < self.cfg.scale_to_zero_grace_ms
                && ctx.current_pods > 0
            {
                return 1;
            }
            if ctx.current_pods > 0 {
                femux_obs::counter_add(
                    "knative.kpa.scale_to_zero_decisions",
                    1,
                );
            }
            return 0;
        }
        stable_pods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_sim::{simulate_app, SimConfig};
    use femux_trace::types::{
        AppId, AppRecord, Invocation, WorkloadKind,
    };

    fn knative_sim_cfg() -> SimConfig {
        SimConfig {
            interval_ms: 2_000,
            respect_min_scale: true,
            ..SimConfig::default()
        }
    }

    fn app(invocations: Vec<Invocation>, concurrency: u32) -> AppRecord {
        let mut a = AppRecord::new(AppId(0), WorkloadKind::Application);
        a.config.concurrency = concurrency;
        a.mem_used_mb = 256;
        a.invocations = invocations;
        a
    }

    #[test]
    fn steady_load_converges_to_demand() {
        // Constant concurrency ~7 with per-pod target 0.7*10 = 7:
        // expect ~1 pod... use concurrency limit 10 and inflight 7.
        let invs: Vec<Invocation> = (0..3_000)
            .map(|k| Invocation {
                start_ms: k * 100,
                duration_ms: 700,
                delay_ms: 0,
            })
            .collect();
        let a = app(invs, 10);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let res = simulate_app(&a, &mut kpa, 300_000, &knative_sim_cfg());
        // Steady state (after the first minute) should hold ~1 pod.
        let late = &res.pod_counts[60..];
        let avg: f64 =
            late.iter().map(|&p| p as f64).sum::<f64>() / late.len() as f64;
        assert!(
            (1.0..=2.5).contains(&avg),
            "steady pods {avg} (expected about 1-2)"
        );
    }

    #[test]
    fn panic_mode_reacts_to_burst() {
        // Quiet traffic, then a sudden 50-way burst: panic should spike
        // pods quickly (within the panic window rather than the stable
        // one).
        let mut invs: Vec<Invocation> = (0..30u64)
            .map(|k| Invocation {
                start_ms: k * 2_000,
                duration_ms: 500,
                delay_ms: 0,
            })
            .collect();
        for k in 0..200u64 {
            invs.push(Invocation {
                start_ms: 80_000 + k * 20,
                duration_ms: 20_000,
                delay_ms: 0,
            });
        }
        let a = app(invs, 5);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let res =
            simulate_app(&a, &mut kpa, 200_000, &knative_sim_cfg());
        // Pods shortly after the burst (ticks 41..46 = 82-92 s).
        let after_burst =
            res.pod_counts[41..47].iter().copied().max().unwrap_or(0);
        assert!(
            after_burst >= 5,
            "panic should scale out fast, got {after_burst} pods"
        );
    }

    #[test]
    fn scale_to_zero_after_grace() {
        let invs = vec![Invocation {
            start_ms: 5_000,
            duration_ms: 500,
            delay_ms: 0,
        }];
        let a = app(invs, 10);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let res =
            simulate_app(&a, &mut kpa, 300_000, &knative_sim_cfg());
        // Final pod count must be zero (grace long expired)...
        assert_eq!(*res.pod_counts.last().expect("ticks"), 0);
        // ...but pods survive through most of the grace period.
        let during_grace = res.pod_counts[5..25].iter().max().copied();
        assert_eq!(during_grace, Some(1));
    }

    #[test]
    fn window_average_ignores_lost_samples() {
        let kpa = KpaPolicy::new(KpaConfig::default());
        let series = [4.0, f64::NAN, 8.0];
        assert_eq!(kpa.window_avg(&series, 60_000), 6.0);
        let all_lost = [f64::NAN; 5];
        assert_eq!(kpa.window_avg(&all_lost, 60_000), 0.0);
    }

    #[test]
    fn missing_report_holds_the_last_target() {
        let a = app(vec![], 10);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let history: Vec<f64> = vec![7.0; 30];
        let ctx = PolicyCtx {
            now_ms: 60_000,
            interval_ms: 2_000,
            avg_concurrency: &history,
            peak_concurrency: &history,
            arrivals: &history,
            config: &a.config,
            current_pods: 1,
            inflight: 7,
        };
        let healthy = kpa.target_pods(&ctx);
        assert!(healthy >= 1, "steady demand must provision pods");
        // The next tick's report is lost: the decision must not change.
        let mut gappy = history.clone();
        gappy.push(f64::NAN);
        let ctx = PolicyCtx {
            now_ms: 62_000,
            avg_concurrency: &gappy,
            ..ctx
        };
        assert_eq!(kpa.target_pods(&ctx), healthy);
    }

    #[test]
    fn default_policy_is_one_minute_keepalive_ish() {
        // Two requests 3 minutes apart: the second must be cold under
        // Knative's default (60 s grace), matching the paper's claim
        // that Knative's default lifetime policy is a 1-minute KA.
        let invs = vec![
            Invocation {
                start_ms: 5_000,
                duration_ms: 500,
                delay_ms: 0,
            },
            Invocation {
                start_ms: 185_000,
                duration_ms: 500,
                delay_ms: 0,
            },
        ];
        let a = app(invs, 10);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let res =
            simulate_app(&a, &mut kpa, 300_000, &knative_sim_cfg());
        assert_eq!(res.costs.cold_starts, 2);
    }
}

//! Wall-clock trace replay (the prototype's FaaSProfiler role).
//!
//! §5.2 replays traces against the Knative deployment with FaaSProfiler:
//! "each invocation executes a Go function that allocates memory and
//! busy waits as defined by the trace". This replayer does the same in
//! compressed wall-clock time: worker threads stand in for pods, each
//! request allocates its app's memory footprint and busy-waits its
//! (scaled) execution time, and the driver reports achieved throughput
//! and per-request latency so platform-level effects (queuing under
//! under-provisioning) are actually observable rather than simulated.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use femux_stats::desc::Summary;
use femux_trace::types::Trace;

/// Configuration for a wall-clock replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Time compression: trace time divided by this factor becomes wall
    /// time (e.g. 600 replays 10 trace-minutes per wall-second).
    pub speedup: f64,
    /// Worker threads standing in for pod capacity.
    pub workers: usize,
    /// Hard cap on replayed invocations.
    pub max_invocations: usize,
    /// Cap on each request's busy-wait in (already compressed) wall
    /// time.
    pub max_busy_wait: Duration,
    /// Bytes allocated per request per MB of the app's footprint
    /// (scaled down so replay fits in memory).
    pub bytes_per_mb: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            speedup: 600.0,
            workers: 4,
            max_invocations: 50_000,
            max_busy_wait: Duration::from_millis(5),
            bytes_per_mb: 256,
        }
    }
}

/// Result of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Requests completed.
    pub completed: u64,
    /// Requests issued.
    pub issued: u64,
    /// End-to-end latency summary in milliseconds (queue + execution).
    pub latency_ms: Summary,
    /// Wall-clock duration of the replay.
    pub wall: Duration,
}

struct Request {
    enqueued: Instant,
    busy: Duration,
    alloc_bytes: usize,
}

fn worker(
    rx: Receiver<Request>,
    latencies: Sender<f64>,
    completed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(req) => {
                // Allocate-and-touch, as FaaSProfiler's function does.
                let mut block = vec![0u8; req.alloc_bytes.max(1)];
                for i in (0..block.len()).step_by(64) {
                    block[i] = i as u8;
                }
                std::hint::black_box(&block);
                // Busy-wait the compressed execution time.
                let t0 = Instant::now();
                while t0.elapsed() < req.busy {
                    std::hint::spin_loop();
                }
                let _ = latencies
                    .send(req.enqueued.elapsed().as_secs_f64() * 1_000.0);
                completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                return;
            }
        }
    }
}

/// Replays a trace in compressed wall-clock time.
pub fn replay(trace: &Trace, cfg: &ReplayConfig) -> ReplayResult {
    assert!(cfg.workers > 0 && cfg.speedup > 0.0, "bad replay config");
    // Merge invocations time-ordered, capped.
    let mut events: Vec<(u64, u32, u32)> = Vec::new(); // (t, dur, mem)
    for app in &trace.apps {
        for inv in &app.invocations {
            events.push((inv.start_ms, inv.duration_ms, app.mem_used_mb));
        }
    }
    events.sort_unstable_by_key(|e| e.0);
    events.truncate(cfg.max_invocations);

    let (tx, rx) = bounded::<Request>(4_096);
    let (lat_tx, lat_rx) = bounded::<f64>(1 << 20);
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..cfg.workers {
        let rx = rx.clone();
        let lat_tx = lat_tx.clone();
        let completed = completed.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            worker(rx, lat_tx, completed, stop)
        }));
    }
    drop(lat_tx);

    let start = Instant::now();
    let mut issued = 0u64;
    for &(t_ms, dur_ms, mem_mb) in &events {
        let due =
            Duration::from_secs_f64(t_ms as f64 / 1_000.0 / cfg.speedup);
        loop {
            let now = start.elapsed();
            if now >= due {
                break;
            }
            let remaining = due - now;
            if remaining > Duration::from_micros(500) {
                std::thread::sleep(remaining - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        let busy = Duration::from_secs_f64(
            dur_ms as f64 / 1_000.0 / cfg.speedup,
        )
        .min(cfg.max_busy_wait);
        if tx
            .send(Request {
                enqueued: Instant::now(),
                busy,
                alloc_bytes: mem_mb as usize * cfg.bytes_per_mb,
            })
            .is_err()
        {
            break;
        }
        issued += 1;
    }
    drop(tx);
    // Drain: wait until everything completes (bounded by a generous
    // timeout proportional to outstanding work).
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::Relaxed) < issued
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let latencies: Vec<f64> = lat_rx.try_iter().collect();
    ReplayResult {
        completed: completed.load(Ordering::Relaxed),
        issued,
        latency_ms: Summary::of(&latencies).unwrap_or(Summary {
            count: 0,
            mean: f64::NAN,
            min: f64::NAN,
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            max: f64::NAN,
        }),
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};

    fn small_trace() -> Trace {
        generate(&IbmFleetConfig {
            n_apps: 30,
            span_days: 1,
            seed: 71,
            max_invocations_per_app: 200,
            rate_scale: 0.02,
        })
    }

    #[test]
    fn replays_everything_at_high_speedup() {
        let trace = small_trace();
        let cfg = ReplayConfig {
            speedup: 50_000.0,
            workers: 2,
            max_invocations: 2_000,
            ..ReplayConfig::default()
        };
        let res = replay(&trace, &cfg);
        assert!(res.issued > 0);
        assert_eq!(res.completed, res.issued, "all requests completed");
        assert!(res.latency_ms.count as u64 == res.completed);
        assert!(res.wall < Duration::from_secs(20));
    }

    #[test]
    fn fewer_workers_mean_higher_latency_under_load() {
        let trace = small_trace();
        let base = ReplayConfig {
            speedup: 100_000.0,
            max_invocations: 1_500,
            max_busy_wait: Duration::from_millis(2),
            ..ReplayConfig::default()
        };
        let narrow = replay(
            &trace,
            &ReplayConfig {
                workers: 1,
                ..base.clone()
            },
        );
        let wide = replay(
            &trace,
            &ReplayConfig {
                workers: 8,
                ..base.clone()
            },
        );
        assert!(narrow.completed > 0 && wide.completed > 0);
        assert!(
            narrow.latency_ms.p90 >= wide.latency_ms.p90 * 0.8,
            "narrow p90 {} vs wide p90 {}",
            narrow.latency_ms.p90,
            wide.latency_ms.p90
        );
    }

    #[test]
    fn invocation_cap_respected() {
        let trace = small_trace();
        let cfg = ReplayConfig {
            speedup: 100_000.0,
            max_invocations: 100,
            ..ReplayConfig::default()
        };
        let res = replay(&trace, &cfg);
        assert!(res.issued <= 100);
    }
}

//! FeMux ⟷ Knative Serving integration (§5.2, Fig. 13).
//!
//! In the prototype, FeMux runs as a microservice that intercepts the
//! per-second concurrency metrics flowing from the queue-proxies to the
//! Autoscaler. The FeMux API batches them into per-minute averages,
//! routes each application's series to its forecasting thread, and
//! returns a predictive scaling target that *overrides* Knative's
//! reactive decision; the override is held for one minute (the forecast
//! horizon).
//!
//! [`FemuxKnativePolicy`] reproduces that control flow on the simulator:
//! it runs at the KPA's 2-second tick, accumulates 30 ticks into a
//! minute sample, refreshes the forecast each minute, and otherwise
//! falls back to the reactive KPA when no forecast exists yet (an app
//! must first accumulate history).

use std::sync::Arc;

use femux::manager::AppManager;
use femux::model::FemuxModel;
use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

use crate::kpa::{KpaConfig, KpaPolicy};

/// FeMux integrated into the Knative autoscaler path.
pub struct FemuxKnativePolicy {
    manager: AppManager,
    kpa: KpaPolicy,
    ticks_per_minute: usize,
    ticks_seen: usize,
    /// Scaling target from the last forecast, held for one minute.
    held_target_conc: Option<f64>,
    /// The autoscaler's per-pod utilization target (Knative default
    /// 0.7): FeMux supplies a concurrency estimate and the Autoscaler
    /// converts it to pods exactly as it does for its own reactive
    /// estimate.
    target_utilization: f64,
}

impl FemuxKnativePolicy {
    /// Creates the integrated policy for one application.
    pub fn new(model: Arc<FemuxModel>, exec_secs: f64) -> Self {
        let kpa_cfg = KpaConfig::default();
        let ticks_per_minute =
            (60_000 / kpa_cfg.tick_ms).max(1) as usize;
        let target_utilization = kpa_cfg.target_utilization;
        FemuxKnativePolicy {
            manager: AppManager::new(model, exec_secs),
            kpa: KpaPolicy::new(kpa_cfg),
            ticks_per_minute,
            ticks_seen: 0,
            held_target_conc: None,
            target_utilization,
        }
    }

    /// Access to the underlying manager (switching statistics).
    pub fn manager(&self) -> &AppManager {
        &self.manager
    }
}

impl ScalingPolicy for FemuxKnativePolicy {
    fn name(&self) -> String {
        "femux-knative".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        // The metrics collector forwards concurrency every tick; the
        // FeMux API batches a minute's worth into one observation.
        let total_ticks = ctx.avg_concurrency.len();
        while self.ticks_seen + self.ticks_per_minute <= total_ticks {
            let lo = self.ticks_seen;
            let hi = lo + self.ticks_per_minute;
            let minute_avg = ctx.avg_concurrency[lo..hi]
                .iter()
                .sum::<f64>()
                / self.ticks_per_minute as f64;
            self.manager.observe(minute_avg);
            self.ticks_seen = hi;
            // Fresh forecast each completed minute, held until the next.
            femux_obs::counter_add("knative.femux.minute_batches", 1);
            let t0 = femux_obs::walltime::monotonic_micros();
            self.held_target_conc = Some(self.manager.forecast(1)[0]);
            femux_obs::walltime::record_elapsed(
                "wall.knative.forecast_us",
                t0,
            );
        }
        let reactive = self.kpa.target_pods(ctx);
        match self.held_target_conc {
            Some(conc) => {
                let predictive = ctx.pods_for_concurrency(
                    conc / self.target_utilization,
                );
                // The activator still covers instantaneous demand: never
                // provision below what is in flight right now.
                let floor =
                    ctx.pods_for_concurrency(ctx.inflight as f64);
                predictive.max(floor)
            }
            None => reactive,
        }
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let total_ticks = ctx.avg_concurrency.len();
        // A minute batch fires this tick (observe + fresh forecast):
        // full per-tick semantics.
        if self.ticks_seen + self.ticks_per_minute <= total_ticks {
            return IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            };
        }
        let to_batch = (self.ticks_seen + self.ticks_per_minute
            - total_ticks) as u64;
        let cap = max_ticks.min(to_batch);
        if cap <= 1
            || !self.kpa.stable_window_all_zero(ctx.avg_concurrency)
            || !self.kpa.settled_for_zero(ctx.now_ms)
        {
            return IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            };
        }
        // No minute boundary inside the run and the KPA sits in its
        // settled scale-to-zero fixed point, so every per-tick decision
        // is the held predictive target (or the reactive 0). The run is
        // only taken when pods already sit at the engine-applied floor,
        // making each skipped tick's inputs identical and the pod
        // trajectory rate-limit-immune.
        let target = match self.held_target_conc {
            Some(conc) => ctx
                .pods_for_concurrency(conc / self.target_utilization),
            None => 0,
        };
        if current_pods != target.max(idle.min_pods) {
            return IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            };
        }
        self.kpa.skip_settled_ticks(cap, current_pods);
        IdleRun { target, ticks: cap }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux::config::FemuxConfig;
    use femux::model::{train, ClassifierKind, TrainApp};
    use femux_sim::{simulate_app, SimConfig};
    use femux_trace::types::{
        AppId, AppRecord, Invocation, WorkloadKind,
    };

    fn trained_model() -> Arc<FemuxModel> {
        let cfg = FemuxConfig {
            block_len: 60,
            history: 30,
            label_stride: 10,
            ..FemuxConfig::for_tests()
        };
        let apps: Vec<TrainApp> = (0..4)
            .map(|i| TrainApp {
                concurrency: (0..400)
                    .map(|t| {
                        2.0 + ((t + i * 7) as f64 * 0.26).sin().max(-1.0)
                    })
                    .collect(),
                exec_secs: 0.5,
                mem_gb: 0.25,
                pod_concurrency: 10,
            })
            .collect();
        Arc::new(
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model"),
        )
    }

    fn periodic_app(minutes: u64) -> AppRecord {
        let mut a = AppRecord::new(AppId(0), WorkloadKind::Application);
        a.config.concurrency = 10;
        a.mem_used_mb = 256;
        // 2-minute period: one busy minute (10 rps, 1 s exec), one idle.
        for m in 0..minutes {
            if m % 2 == 0 {
                for k in 0..600u64 {
                    a.invocations.push(Invocation {
                        start_ms: m * 60_000 + k * 100,
                        duration_ms: 1_000,
                        delay_ms: 0,
                    });
                }
            }
        }
        a
    }

    #[test]
    fn integrated_policy_runs_and_accounts() {
        let model = trained_model();
        let app = periodic_app(30);
        let cfg = SimConfig {
            interval_ms: 2_000,
            ..SimConfig::default()
        };
        let mut policy = FemuxKnativePolicy::new(model, 1.0);
        let res = simulate_app(&app, &mut policy, 30 * 60_000, &cfg);
        res.costs.check().expect("consistent");
        assert_eq!(
            res.costs.invocations,
            app.invocations.len() as u64
        );
    }

    #[test]
    fn predictive_override_beats_reactive_on_periodic_load() {
        let model = trained_model();
        let app = periodic_app(60);
        let span = 60 * 60_000u64;
        let cfg = SimConfig {
            interval_ms: 2_000,
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let mut femux_policy =
            FemuxKnativePolicy::new(model, 1.0);
        let femux_res =
            simulate_app(&app, &mut femux_policy, span, &cfg);
        let mut kpa = KpaPolicy::new(KpaConfig::default());
        let kpa_res = simulate_app(&app, &mut kpa, span, &cfg);
        assert!(
            femux_res.costs.cold_starts <= kpa_res.costs.cold_starts,
            "femux {} vs kpa {} cold starts",
            femux_res.costs.cold_starts,
            kpa_res.costs.cold_starts
        );
    }

    #[test]
    fn falls_back_to_kpa_before_first_minute() {
        let model = trained_model();
        let mut policy = FemuxKnativePolicy::new(model, 1.0);
        let config = femux_trace::AppConfig {
            concurrency: 10,
            ..Default::default()
        };
        // Only 5 ticks of history: no complete minute yet.
        let hist = vec![3.0; 5];
        let ctx = PolicyCtx {
            now_ms: 10_000,
            interval_ms: 2_000,
            avg_concurrency: &hist,
            peak_concurrency: &hist,
            arrivals: &hist,
            config: &config,
            current_pods: 1,
            inflight: 3,
        };
        let target = policy.target_pods(&ctx);
        assert!(target >= 1, "reactive fallback should provision");
    }
}

//! Wall-clock FeMux forecasting-service harness (§5.2 scalability study).
//!
//! The prototype serves forecasts from dedicated *FeMux pods*: each
//! application's per-minute concurrency is routed to a forecasting
//! thread, and the paper reports a single 1-vCPU pod sustaining 20
//! forecast requests/second (≥1,200 applications at one forecast per
//! minute) with 7 ms mean / 25 ms p99 latency, scaling out horizontally.
//!
//! This harness reproduces the measurement: real threads, real
//! channels, real forecaster compute, wall-clock latencies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use femux_forecast::ForecasterKind;
use femux_stats::desc::Summary;
use femux_stats::rng::Rng;

/// A forecast request routed to a FeMux pod.
struct ForecastRequest {
    app_id: usize,
    history: Vec<f64>,
    enqueued: Instant,
}

/// Configuration for a scalability run.
#[derive(Debug, Clone)]
pub struct ScalabilityConfig {
    /// Number of FeMux pods (one worker thread each, modelling the
    /// paper's 1-vCPU pods).
    pub pods: usize,
    /// Applications sending one forecast request per simulated minute.
    pub apps: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Seconds of a "minute" in compressed time: requests arrive at
    /// `apps / minute_secs` per second. The paper's 1,200 apps at 60 s
    /// minutes = 20 rps.
    pub minute_secs: f64,
    /// History length per request (paper: 120 one-minute samples).
    pub history_len: usize,
    /// RNG seed for histories and arrival jitter.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            pods: 1,
            apps: 1_200,
            duration: Duration::from_secs(10),
            minute_secs: 60.0,
            history_len: 120,
            seed: 0x5CA1E,
        }
    }
}

/// Result of a scalability run.
#[derive(Debug, Clone)]
pub struct ScalabilityResult {
    /// Completed forecasts.
    pub completed: usize,
    /// Offered request rate, per second.
    pub offered_rps: f64,
    /// Achieved throughput, per second.
    pub achieved_rps: f64,
    /// Latency summary in milliseconds (queue wait + compute).
    pub latency_ms: Summary,
}

fn worker(
    requests: Receiver<ForecastRequest>,
    results: Sender<f64>,
    stop: Arc<AtomicBool>,
) {
    // Each app uses a forecaster from the FeMux set, chosen by app id —
    // the pod multiplexes across whatever the classifier assigned.
    let kinds = ForecasterKind::FEMUX_SET;
    let mut forecasters: Vec<Box<dyn femux_forecast::Forecaster>> =
        kinds.iter().map(|k| k.build()).collect();
    while !stop.load(Ordering::Relaxed) {
        match requests.recv_timeout(Duration::from_millis(20)) {
            Ok(req) => {
                let f = &mut forecasters[req.app_id % kinds.len()];
                let pred = f.forecast(&req.history, 1);
                std::hint::black_box(&pred);
                let latency =
                    req.enqueued.elapsed().as_secs_f64() * 1_000.0;
                if results.send(latency).is_err() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                return;
            }
        }
    }
}

/// Runs the harness and reports latency statistics.
pub fn run_scalability(cfg: &ScalabilityConfig) -> ScalabilityResult {
    assert!(cfg.pods > 0 && cfg.apps > 0, "need pods and apps");
    let mut rng = Rng::seed_from_u64(cfg.seed);
    // Pre-generate app histories (varied shapes so forecaster work is
    // realistic).
    let histories: Vec<Vec<f64>> = (0..cfg.apps.min(2_048))
        .map(|i| {
            let mut h = Vec::with_capacity(cfg.history_len);
            for t in 0..cfg.history_len {
                let base = 1.0 + (i % 7) as f64;
                let wave = (t as f64 * (0.05 + (i % 5) as f64 * 0.07))
                    .sin()
                    .abs();
                h.push(base * wave + rng.f64());
            }
            h
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let (result_tx, result_rx) = unbounded::<f64>();
    let mut pod_txs: Vec<Sender<ForecastRequest>> = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..cfg.pods {
        let (tx, rx) = unbounded::<ForecastRequest>();
        pod_txs.push(tx);
        let results = result_tx.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            worker(rx, results, stop)
        }));
    }
    drop(result_tx);

    // Open-loop Poisson load: apps/minute_secs requests per second,
    // routed app -> pod by modulo (the FeMux API's routing rule).
    let offered_rps = cfg.apps as f64 / cfg.minute_secs;
    let start = Instant::now();
    let mut next = 0.0f64; // seconds since start
    let mut sent = 0usize;
    while start.elapsed() < cfg.duration {
        next += rng.exp(offered_rps);
        let target = Duration::from_secs_f64(next);
        if target > cfg.duration {
            break;
        }
        // Sleep to just before the deadline, then spin for precision.
        loop {
            let now = start.elapsed();
            if now >= target {
                break;
            }
            let remaining = target - now;
            if remaining > Duration::from_micros(500) {
                std::thread::sleep(remaining - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        let app_id = rng.index(cfg.apps);
        let history =
            histories[app_id % histories.len()].clone();
        let _ = pod_txs[app_id % cfg.pods].send(ForecastRequest {
            app_id,
            history,
            enqueued: Instant::now(),
        });
        sent += 1;
    }
    // Allow the queues to drain briefly, then stop.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    drop(pod_txs);
    for h in handles {
        let _ = h.join();
    }
    let _ = sent;
    let latencies: Vec<f64> = result_rx.try_iter().collect();
    let elapsed = start.elapsed().as_secs_f64();
    ScalabilityResult {
        completed: latencies.len(),
        offered_rps,
        achieved_rps: latencies.len() as f64 / elapsed,
        latency_ms: Summary::of(&latencies).unwrap_or(Summary {
            count: 0,
            mean: f64::NAN,
            min: f64::NAN,
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            max: f64::NAN,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pod_handles_paper_rate() {
        // 20 rps against one pod for a short window.
        let cfg = ScalabilityConfig {
            pods: 1,
            apps: 1_200,
            duration: Duration::from_secs(2),
            ..ScalabilityConfig::default()
        };
        let res = run_scalability(&cfg);
        assert!(res.completed > 20, "completed {}", res.completed);
        // Single-forecast latency should be single-digit ms on average
        // in this substrate; allow generous slack for CI noise.
        assert!(
            res.latency_ms.p50 < 100.0,
            "p50 {} ms",
            res.latency_ms.p50
        );
    }

    #[test]
    fn more_pods_do_not_hurt_latency() {
        let base = ScalabilityConfig {
            apps: 2_400,
            duration: Duration::from_secs(2),
            minute_secs: 30.0, // 80 rps
            ..ScalabilityConfig::default()
        };
        let one = run_scalability(&ScalabilityConfig {
            pods: 1,
            ..base.clone()
        });
        let four = run_scalability(&ScalabilityConfig {
            pods: 4,
            ..base.clone()
        });
        assert!(four.completed > 0 && one.completed > 0);
        assert!(
            four.latency_ms.p99 <= one.latency_ms.p99 * 3.0,
            "4 pods p99 {} vs 1 pod p99 {}",
            four.latency_ms.p99,
            one.latency_ms.p99
        );
    }

    #[test]
    fn throughput_tracks_offered_load() {
        let cfg = ScalabilityConfig {
            pods: 2,
            apps: 600,
            duration: Duration::from_secs(2),
            minute_secs: 60.0, // 10 rps
            ..ScalabilityConfig::default()
        };
        let res = run_scalability(&cfg);
        assert!(
            (res.achieved_rps - res.offered_rps).abs()
                < res.offered_rps * 0.5,
            "achieved {} vs offered {}",
            res.achieved_rps,
            res.offered_rps
        );
    }
}

//! Miniature Knative Serving substrate with FeMux integration (§5.2).
//!
//! Reproduces the prototype evaluation's moving parts:
//!
//! - [`kpa`]: the Knative Pod Autoscaler model — 2-second decisions, a
//!   60-second stable window, a 6-second panic window, and the
//!   60-second scale-to-zero grace period that makes Knative's default
//!   lifetime policy effectively a 1-minute keep-alive. Runs on the
//!   `femux-sim` engine at a 2-second interval (the simulator's ticks
//!   play the autoscaler loop; its per-interval average concurrency
//!   plays the queue-proxy reports; its reactive cold-start handling
//!   plays the Activator's buffering).
//! - [`integration`]: FeMux inserted into the metric path — per-second
//!   concurrency batched into minutes, routed to forecasting threads,
//!   returning a predictive target that overrides the reactive KPA for
//!   one minute at a time.
//! - [`scalability`]: a wall-clock multi-threaded harness measuring
//!   forecasting-service latency (the paper: ≥1,200 apps per 1-vCPU
//!   FeMux pod at 7 ms mean / 25 ms p99) and horizontal scale-out.

pub mod integration;
pub mod kpa;
pub mod replayer;
pub mod scalability;
pub mod statestore;

pub use integration::FemuxKnativePolicy;
pub use kpa::{KpaConfig, KpaPolicy};
pub use scalability::{
    run_scalability, ScalabilityConfig, ScalabilityResult,
};
pub use replayer::{replay, ReplayConfig, ReplayResult};
pub use statestore::StateStore;

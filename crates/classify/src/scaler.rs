//! Feature standardization.
//!
//! FeMux standardizes block features (zero mean, unit variance) before
//! clustering (§4.3.4, "StandardScaler"), so that features on wildly
//! different scales — ADF statistics around -10, densities around 5 —
//! contribute comparably to the k-means distance.

/// A fitted per-column standardizer.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a row-major feature matrix.
    ///
    /// Columns with zero variance are given a standard deviation of 1 so
    /// transforming them yields zeros rather than NaNs. Columns whose
    /// mean or standard deviation comes out non-finite (a poisoned
    /// sample in the fit set) are likewise neutralized to mean 0 /
    /// std 1.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no rows");
        let dims = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dims];
        for row in rows {
            assert_eq!(row.len(), dims, "ragged feature matrix");
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
            // A non-finite sample (poisoned density on an ∞-bearing
            // window, a NaN from a lost report) would otherwise make the
            // whole column's mean/std NaN and poison every z-score fit
            // on it. Center such columns at 0 and let the std guard
            // below neutralize the scale.
            if !m.is_finite() {
                *m = 0.0;
            }
        }
        let mut stds = vec![0.0; dims];
        for row in rows {
            for ((s, x), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            // `< 1e-12` alone misses NaN (all comparisons on NaN are
            // false), which let a single non-finite sample ship a NaN
            // std and turn every later z-score in the column into NaN.
            if !s.is_finite() || *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Returns the feature dimensionality.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Transforms one row in place.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dims(), "dimension mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds)
        {
            *x = (*x - m) / s;
            // Online windows can still present non-finite raw features
            // (e.g. ln-density of an ∞ sum). A NaN z-score makes every
            // k-means distance involving the row NaN, which silently
            // routes the app to cluster 0 and — during refits — poisons
            // Lloyd centroid sums. Clamp at the boundary instead.
            if !x.is_finite() {
                *x = 0.0;
            }
        }
    }

    /// Transforms a matrix, returning a new one.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect()
    }

    /// Inverts the transformation for one row.
    pub fn inverse_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dims(), "dimension mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds)
        {
            *x = *x * s + m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let rows = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
        ];
        let scaler = StandardScaler::fit(&rows);
        let out = scaler.transform(&rows);
        for col in 0..2 {
            let mean: f64 =
                out.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 =
                out.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {col} var {var}");
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let scaler = StandardScaler::fit(&rows);
        let out = scaler.transform(&rows);
        assert_eq!(out[0][0], 0.0);
        assert_eq!(out[1][0], 0.0);
        assert!(out[0][1].is_finite());
    }

    #[test]
    fn round_trip() {
        let rows = vec![vec![1.5, -3.0], vec![0.5, 9.0], vec![2.5, 0.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut row = rows[1].clone();
        scaler.transform_row(&mut row);
        scaler.inverse_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-12);
        assert!((row[1] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn nonfinite_fit_sample_does_not_poison_the_column() {
        // Regression: a NaN in the fit set made the column's mean and
        // std NaN; the old `*s < 1e-12` guard is false for NaN, so every
        // subsequent z-score in the column was NaN.
        for poison in [f64::NAN, f64::INFINITY] {
            let rows = vec![
                vec![1.0, 10.0],
                vec![poison, 20.0],
                vec![3.0, 30.0],
            ];
            let scaler = StandardScaler::fit(&rows);
            let mut probe = vec![2.0, 20.0];
            scaler.transform_row(&mut probe);
            assert!(
                probe.iter().all(|z| z.is_finite()),
                "poison={poison}: {probe:?}"
            );
        }
    }

    #[test]
    fn nonfinite_live_feature_clamps_to_zero_z_score() {
        // Regression: transform_row passed non-finite raw features
        // through as non-finite z-scores, which poison k-means distances
        // downstream.
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut live = vec![f64::INFINITY, f64::NAN];
        scaler.transform_row(&mut live);
        assert_eq!(live, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_fit_panics() {
        StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

//! Feature standardization.
//!
//! FeMux standardizes block features (zero mean, unit variance) before
//! clustering (§4.3.4, "StandardScaler"), so that features on wildly
//! different scales — ADF statistics around -10, densities around 5 —
//! contribute comparably to the k-means distance.

/// A fitted per-column standardizer.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a row-major feature matrix.
    ///
    /// Columns with zero variance are given a standard deviation of 1 so
    /// transforming them yields zeros rather than NaNs.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no rows");
        let dims = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dims];
        for row in rows {
            assert_eq!(row.len(), dims, "ragged feature matrix");
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dims];
        for row in rows {
            for ((s, x), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Returns the feature dimensionality.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Transforms one row in place.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dims(), "dimension mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds)
        {
            *x = (*x - m) / s;
        }
    }

    /// Transforms a matrix, returning a new one.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect()
    }

    /// Inverts the transformation for one row.
    pub fn inverse_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dims(), "dimension mismatch");
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds)
        {
            *x = *x * s + m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let rows = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
        ];
        let scaler = StandardScaler::fit(&rows);
        let out = scaler.transform(&rows);
        for col in 0..2 {
            let mean: f64 =
                out.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 =
                out.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {col} var {var}");
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let scaler = StandardScaler::fit(&rows);
        let out = scaler.transform(&rows);
        assert_eq!(out[0][0], 0.0);
        assert_eq!(out[1][0], 0.0);
        assert!(out[0][1].is_finite());
    }

    #[test]
    fn round_trip() {
        let rows = vec![vec![1.5, -3.0], vec![0.5, 9.0], vec![2.5, 0.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut row = rows[1].clone();
        scaler.transform_row(&mut row);
        scaler.inverse_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-12);
        assert!((row[1] - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_fit_panics() {
        StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

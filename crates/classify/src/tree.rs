//! CART decision trees and random forests.
//!
//! The paper compares FeMux's k-means assignment against supervised
//! models (decision trees, random forests) that label each block with its
//! best forecaster, and finds clustering ~15 % better on RUM because the
//! cluster-level assignment tolerates mislabelled blocks (§4.3.4). These
//! implementations exist to reproduce that comparison.

use femux_stats::rng::Rng;

/// A node in a CART tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Training hyperparameters for a decision tree.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// If set, the number of random features considered per split
    /// (used by random forests); `None` considers all features.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

/// A fitted CART classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(labels: &[usize], idx: &[usize], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Fits a tree on row-major features and class labels.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[usize],
        cfg: &TreeConfig,
    ) -> Self {
        Self::fit_seeded(rows, labels, cfg, &mut Rng::seed_from_u64(0))
    }

    /// Fits with an explicit RNG (for forests' feature subsampling).
    pub fn fit_seeded(
        rows: &[Vec<f64>],
        labels: &[usize],
        cfg: &TreeConfig,
        rng: &mut Rng,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on no rows");
        assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
        let n_classes =
            labels.iter().copied().max().expect("non-empty") + 1;
        let idx: Vec<usize> = (0..rows.len()).collect();
        let root =
            build(rows, labels, &idx, n_classes, cfg, 0, rng);
        DecisionTree { root, n_classes }
    }

    /// Predicts the class of one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Returns the number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

fn build(
    rows: &[Vec<f64>],
    labels: &[usize],
    idx: &[usize],
    n_classes: usize,
    cfg: &TreeConfig,
    depth: usize,
    rng: &mut Rng,
) -> Node {
    let label = majority(labels, idx, n_classes);
    if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        return Node::Leaf { label };
    }
    // Pure node?
    if idx.iter().all(|&i| labels[i] == labels[idx[0]]) {
        return Node::Leaf { label };
    }
    let n_features = rows[0].len();
    let feature_pool: Vec<usize> = match cfg.max_features {
        Some(m) if m < n_features => {
            rng.sample_indices(n_features, m)
        }
        _ => (0..n_features).collect(),
    };
    let parent_counts = {
        let mut c = vec![0usize; n_classes];
        for &i in idx {
            c[labels[i]] += 1;
        }
        c
    };
    let parent_gini = gini(&parent_counts, idx.len());
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, thr)
    for &f in &feature_pool {
        // Sort members by this feature and scan split points.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            rows[a][f]
                .partial_cmp(&rows[b][f])
                .expect("features must not be NaN")
        });
        let mut left_counts = vec![0usize; n_classes];
        let mut right_counts = parent_counts.clone();
        for (pos, window) in order.windows(2).enumerate() {
            let i = window[0];
            left_counts[labels[i]] += 1;
            right_counts[labels[i]] -= 1;
            let (a, b) = (rows[i][f], rows[window[1]][f]);
            if a == b {
                continue;
            }
            let n_left = pos + 1;
            let n_right = idx.len() - n_left;
            let weighted = (n_left as f64 * gini(&left_counts, n_left)
                + n_right as f64 * gini(&right_counts, n_right))
                / idx.len() as f64;
            let gain = parent_gini - weighted;
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, (a + b) / 2.0));
            }
        }
    }
    let Some((gain, feature, threshold)) = best else {
        return Node::Leaf { label };
    };
    if gain <= 1e-12 {
        return Node::Leaf { label };
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| rows[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf { label };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(
            rows, labels, &left_idx, n_classes, cfg, depth + 1, rng,
        )),
        right: Box::new(build(
            rows, labels, &right_idx, n_classes, cfg, depth + 1, rng,
        )),
    }
}

/// A bagged random forest of CART trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

/// Training hyperparameters for a random forest.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to sqrt(d)).
    pub tree: TreeConfig,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 25,
            tree: TreeConfig::default(),
            seed: 0xF0_4E57,
        }
    }
}

impl RandomForest {
    /// Fits a forest with bootstrap sampling and sqrt-feature splits.
    ///
    /// Trees are fitted in parallel: each tree's PRNG seed is drawn from
    /// the master stream *before* dispatch and the trees are collected
    /// in index order, so the forest is identical for every
    /// `FEMUX_THREADS` setting.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[usize],
        cfg: &ForestConfig,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a forest on no rows");
        assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
        let n_classes =
            labels.iter().copied().max().expect("non-empty") + 1;
        let n_features = rows[0].len();
        let default_features =
            ((n_features as f64).sqrt().ceil() as usize).max(1);
        let tree_cfg = TreeConfig {
            max_features: Some(
                cfg.tree.max_features.unwrap_or(default_features),
            ),
            ..cfg.tree.clone()
        };
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let seeds: Vec<u64> =
            (0..cfg.n_trees).map(|_| rng.next_u64()).collect();
        femux_obs::counter_add("classify.forest.fits", 1);
        femux_obs::counter_add(
            "classify.forest.trees",
            seeds.len() as u64,
        );
        let trees = femux_par::par_map(&seeds, |_, &seed| {
            let mut rng = Rng::seed_from_u64(seed);
            // Bootstrap sample.
            let mut boot_rows = Vec::with_capacity(rows.len());
            let mut boot_labels = Vec::with_capacity(rows.len());
            for _ in 0..rows.len() {
                let i = rng.index(rows.len());
                boot_rows.push(rows[i].clone());
                boot_labels.push(labels[i]);
            }
            DecisionTree::fit_seeded(
                &boot_rows,
                &boot_labels,
                &tree_cfg,
                &mut rng,
            )
        });
        RandomForest { trees, n_classes }
    }

    /// Predicts by majority vote.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict(row);
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    /// Returns the number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Returns true if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish dataset: class = (x > 0) ^ (y > 0).
    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x = rng.range_f64(-1.0, 1.0);
            let y = rng.range_f64(-1.0, 1.0);
            rows.push(vec![x, y]);
            labels.push(usize::from((x > 0.0) ^ (y > 0.0)));
        }
        (rows, labels)
    }

    #[test]
    fn tree_learns_axis_aligned_rule() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let labels: Vec<usize> =
            (0..100).map(|i| usize::from(i >= 50)).collect();
        let tree = DecisionTree::fit(&rows, &labels, &TreeConfig::default());
        assert_eq!(tree.predict(&[0.1]), 0);
        assert_eq!(tree.predict(&[0.9]), 1);
        assert_eq!(tree.n_classes(), 2);
    }

    #[test]
    fn tree_learns_xor() {
        let (rows, labels) = xor_data(400, 1);
        let tree = DecisionTree::fit(&rows, &labels, &TreeConfig::default());
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| tree.predict(r) == l)
            .count();
        assert!(
            correct as f64 / rows.len() as f64 > 0.95,
            "accuracy {}",
            correct as f64 / rows.len() as f64
        );
    }

    #[test]
    fn depth_zero_gives_majority() {
        let (rows, mut labels) = xor_data(100, 2);
        labels.iter_mut().take(80).for_each(|l| *l = 1);
        let tree = DecisionTree::fit(
            &rows,
            &labels,
            &TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.predict(&[0.0, 0.0]), 1);
    }

    #[test]
    fn forest_generalizes_on_xor() {
        let (train_rows, train_labels) = xor_data(500, 3);
        let (test_rows, test_labels) = xor_data(200, 4);
        let forest = RandomForest::fit(
            &train_rows,
            &train_labels,
            &ForestConfig::default(),
        );
        assert_eq!(forest.len(), 25);
        let correct = test_rows
            .iter()
            .zip(&test_labels)
            .filter(|(r, &l)| forest.predict(r) == l)
            .count();
        assert!(
            correct as f64 / test_rows.len() as f64 > 0.9,
            "held-out accuracy {}",
            correct as f64 / test_rows.len() as f64
        );
    }

    #[test]
    fn forest_is_deterministic() {
        let (rows, labels) = xor_data(150, 5);
        let a = RandomForest::fit(&rows, &labels, &ForestConfig::default());
        let b = RandomForest::fit(&rows, &labels, &ForestConfig::default());
        for r in rows.iter().take(20) {
            assert_eq!(a.predict(r), b.predict(r));
        }
    }

    #[test]
    fn single_class_dataset() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![0, 0, 0];
        let tree = DecisionTree::fit(&rows, &labels, &TreeConfig::default());
        assert_eq!(tree.predict(&[99.0]), 0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }
}

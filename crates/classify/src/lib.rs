//! Classification substrate for FeMux's forecaster selection (§4.3.4).
//!
//! The offline pipeline standardizes block features with
//! [`scaler::StandardScaler`], clusters them with [`kmeans::KMeans`]
//! (k-means++ initialization, multiple restarts), and assigns each
//! cluster the forecaster with the lowest summed RUM over member blocks.
//! [`tree`] implements the supervised alternatives (CART decision tree,
//! random forest) that the paper compares against — clustering wins by
//! ~15 % on RUM because it is robust to individually mislabelled blocks.

pub mod kmeans;
pub mod scaler;
pub mod tree;

pub use kmeans::{KMeans, KMeansConfig};
pub use scaler::StandardScaler;
pub use tree::{DecisionTree, ForestConfig, RandomForest, TreeConfig};

/// Assigns each k-means cluster the label (forecaster index) with the
/// lowest summed cost over the cluster's member blocks, and returns the
/// per-cluster assignment plus the global default label (lowest total
/// cost overall — used when a block cannot be classified).
///
/// `costs[row][label]` is the cost of serving block `row` with
/// forecaster `label` (for FeMux: the block's RUM under that
/// forecaster).
///
/// # Panics
///
/// Panics if `assignments` and `costs` disagree in length, if `costs`
/// is empty or ragged.
pub fn assign_clusters(
    assignments: &[usize],
    costs: &[Vec<f64>],
    n_clusters: usize,
) -> (Vec<usize>, usize) {
    assert_eq!(assignments.len(), costs.len(), "length mismatch");
    assert!(!costs.is_empty(), "need at least one block");
    let n_labels = costs[0].len();
    assert!(
        costs.iter().all(|c| c.len() == n_labels),
        "ragged cost matrix"
    );
    let mut cluster_costs = vec![vec![0.0f64; n_labels]; n_clusters];
    let mut total_costs = vec![0.0f64; n_labels];
    for (&cluster, row) in assignments.iter().zip(costs) {
        for (label, &cost) in row.iter().enumerate() {
            cluster_costs[cluster][label] += cost;
            total_costs[label] += cost;
        }
    }
    let argmin = |v: &[f64]| -> usize {
        v.iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.partial_cmp(b.1).expect("costs must not be NaN")
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let per_cluster: Vec<usize> =
        cluster_costs.iter().map(|c| argmin(c)).collect();
    (per_cluster, argmin(&total_costs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_pick_lowest_sum() {
        // Two clusters; label 1 best for cluster 0, label 0 for cluster 1.
        let assignments = vec![0, 0, 1, 1];
        let costs = vec![
            vec![5.0, 1.0],
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![1.0, 5.0],
        ];
        let (per_cluster, default) =
            assign_clusters(&assignments, &costs, 2);
        assert_eq!(per_cluster, vec![1, 0]);
        // Totals tie at 12 each; argmin picks the first.
        assert_eq!(default, 0);
    }

    #[test]
    fn cluster_assignment_tolerates_outlier_blocks() {
        // One block in cluster 0 prefers label 0, but the cluster as a
        // whole prefers label 1 — the paper's robustness argument.
        let assignments = vec![0, 0, 0];
        let costs = vec![
            vec![0.0, 10.0], // outlier
            vec![9.0, 1.0],
            vec![9.0, 1.0],
        ];
        let (per_cluster, _) = assign_clusters(&assignments, &costs, 1);
        assert_eq!(per_cluster[0], 1);
    }

    #[test]
    fn empty_cluster_gets_some_label() {
        let assignments = vec![0, 0];
        let costs = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        let (per_cluster, default) =
            assign_clusters(&assignments, &costs, 3);
        assert_eq!(per_cluster.len(), 3);
        // Empty clusters fall back to label 0 (all-zero sums).
        assert_eq!(per_cluster[2], 0);
        assert_eq!(default, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        assign_clusters(&[0], &[], 1);
    }
}

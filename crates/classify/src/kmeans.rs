//! K-means clustering with k-means++ initialization.
//!
//! FeMux groups blocks with similar features via k-means and assigns each
//! cluster the forecaster with the lowest summed RUM over its member
//! blocks (§4.3.4). The paper found clustering ~15 % better than
//! supervised per-block labelling because a cluster-level assignment is
//! robust to individually mislabelled blocks.

use femux_stats::rng::Rng;

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids (k rows).
    pub centroids: Vec<Vec<f64>>,
    /// Training inertia (sum of squared distances to assigned centroid).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Configuration for k-means training.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Independent restarts; the best-inertia run wins.
    pub restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iter: 100,
            tol: 1e-6,
            seed: 0xC1_0D,
            restarts: 4,
        }
    }
}

impl KMeans {
    /// Fits k-means on a row-major matrix.
    ///
    /// If there are fewer distinct rows than `k`, the effective cluster
    /// count shrinks gracefully (duplicate centroids collapse).
    ///
    /// Restarts run in parallel: each restart's PRNG seed is drawn from
    /// the master stream *before* dispatch, and the winner is the
    /// lowest-inertia model with ties broken by restart order, so the
    /// result is identical for every `FEMUX_THREADS` setting.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, ragged, or `cfg.k == 0`.
    pub fn fit(rows: &[Vec<f64>], cfg: &KMeansConfig) -> KMeans {
        assert!(!rows.is_empty(), "cannot cluster zero rows");
        assert!(cfg.k > 0, "k must be positive");
        let dims = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dims),
            "ragged feature matrix"
        );
        // A single non-finite coordinate poisons every distance it
        // touches: k-means++ weights go NaN, Lloyd centroid sums go
        // NaN, and the final inertia comparison used to panic on the
        // resulting non-total order. Clamp offending coordinates to 0
        // (the scaler's "no information" z-score) before fitting.
        let cleaned: Option<Vec<Vec<f64>>> =
            if rows.iter().flatten().all(|x| x.is_finite()) {
                None
            } else {
                let bad = rows
                    .iter()
                    .filter(|r| r.iter().any(|x| !x.is_finite()))
                    .count();
                femux_obs::counter_add(
                    "classify.kmeans.nonfinite_rows",
                    bad as u64,
                );
                Some(
                    rows.iter()
                        .map(|r| {
                            r.iter()
                                .map(|&x| if x.is_finite() { x } else { 0.0 })
                                .collect()
                        })
                        .collect(),
                )
            };
        let rows: &[Vec<f64>] = cleaned.as_deref().unwrap_or(rows);
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let seeds: Vec<u64> = (0..cfg.restarts.max(1))
            .map(|_| rng.next_u64())
            .collect();
        femux_obs::counter_add("classify.kmeans.fits", 1);
        femux_obs::counter_add(
            "classify.kmeans.restarts",
            seeds.len() as u64,
        );
        femux_par::par_map(&seeds, |_, &seed| {
            Self::fit_once(rows, cfg, &mut Rng::seed_from_u64(seed))
        })
        .into_iter()
        // total_cmp keeps the first-minimum tie-break of min_by for
        // finite inertias and, unlike the old partial_cmp + expect,
        // cannot panic if an inertia still comes out non-finite.
        .min_by(|a, b| a.inertia.total_cmp(&b.inertia))
        .expect("at least one restart ran")
    }

    fn fit_once(
        rows: &[Vec<f64>],
        cfg: &KMeansConfig,
        rng: &mut Rng,
    ) -> KMeans {
        let k = cfg.k.min(rows.len());
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> =
            vec![rows[rng.index(rows.len())].clone()];
        while centroids.len() < k {
            let dists: Vec<f64> = rows
                .iter()
                .map(|r| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(r, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= 1e-18 {
                // All points coincide with existing centroids.
                break;
            }
            let idx = rng.weighted_index(&dists);
            centroids.push(rows[idx].clone());
        }
        // Lloyd iterations.
        let mut assignment = vec![0usize; rows.len()];
        let mut iterations = 0;
        for iter in 0..cfg.max_iter {
            iterations = iter + 1;
            assignment = assign_rows(rows, &centroids);
            let mut sums: Vec<Vec<f64>> =
                vec![vec![0.0; rows[0].len()]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (&a, row) in assignment.iter().zip(rows) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(row) {
                    *s += x;
                }
            }
            let mut movement = 0.0f64;
            for (c, (sum, &count)) in
                centroids.iter_mut().zip(sums.iter().zip(&counts))
            {
                if count == 0 {
                    continue; // Keep empty clusters where they are.
                }
                let new: Vec<f64> =
                    sum.iter().map(|s| s / count as f64).collect();
                movement = movement.max(sq_dist(c, &new));
                *c = new;
            }
            if movement < cfg.tol {
                break;
            }
        }
        let inertia: f64 = rows
            .iter()
            .zip(&assignment)
            .map(|(r, &a)| sq_dist(r, &centroids[a]))
            .sum();
        // Per-restart work metric; restart count is fixed up front, so
        // this stays scheduling-invariant even inside the parallel map.
        femux_obs::counter_add(
            "classify.kmeans.lloyd_iterations",
            iterations as u64,
        );
        femux_obs::observe(
            "classify.kmeans.lloyd_iterations",
            iterations as u64,
        );
        KMeans {
            centroids,
            inertia,
            iterations,
        }
    }

    /// Returns the number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Predicts the cluster of one row.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict(&self, row: &[f64]) -> usize {
        nearest(&self.centroids, row).0
    }

    /// Predicts clusters for a matrix (parallel over rows; output is in
    /// row order and identical for every thread count).
    pub fn predict_all(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assign_rows(rows, &self.centroids)
    }
}

/// Rows of work per parallel dispatch in the assignment step; cheap
/// enough per row that per-item dispatch would dominate.
const ASSIGN_CHUNK: usize = 256;

/// Parallel work threshold for the assignment step: below roughly this
/// many row-centroid distance evaluations, thread dispatch costs more
/// than it saves. Correctness never depends on the branch taken — the
/// per-row computation is pure.
const ASSIGN_PAR_THRESHOLD: usize = 1 << 14;

/// Assigns each row to its nearest centroid, in row order.
fn assign_rows(rows: &[Vec<f64>], centroids: &[Vec<f64>]) -> Vec<usize> {
    if rows.len() * centroids.len() >= ASSIGN_PAR_THRESHOLD {
        femux_par::par_map_chunked(rows, ASSIGN_CHUNK, |_, row| {
            nearest(centroids, row).0
        })
    } else {
        rows.iter().map(|row| nearest(centroids, row).0).collect()
    }
}

fn nearest(centroids: &[Vec<f64>], row: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        assert_eq!(c.len(), row.len(), "dimension mismatch");
        let d = sq_dist(c, row);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs(per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..per {
                rows.push(vec![
                    c[0] + 0.5 * rng.normal(),
                    c[1] + 0.5 * rng.normal(),
                ]);
                truth.push(label);
            }
        }
        (rows, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (rows, truth) = three_blobs(50, 1);
        let model = KMeans::fit(
            &rows,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        );
        let pred = model.predict_all(&rows);
        // Each true blob must map to exactly one predicted cluster.
        for blob in 0..3 {
            let members: Vec<usize> = pred
                .iter()
                .zip(&truth)
                .filter(|(_, t)| **t == blob)
                .map(|(p, _)| *p)
                .collect();
            let first = members[0];
            assert!(
                members.iter().all(|m| *m == first),
                "blob {blob} split across clusters"
            );
        }
        assert!(model.inertia < 150.0, "inertia {}", model.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, _) = three_blobs(30, 2);
        let cfg = KMeansConfig {
            k: 3,
            seed: 9,
            ..KMeansConfig::default()
        };
        let a = KMeans::fit(&rows, &cfg);
        let b = KMeans::fit(&rows, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_points_shrinks() {
        let rows = vec![vec![1.0], vec![2.0]];
        let model = KMeans::fit(
            &rows,
            &KMeansConfig {
                k: 10,
                ..KMeansConfig::default()
            },
        );
        assert!(model.k() <= 2);
        assert!(model.inertia < 1e-12);
    }

    #[test]
    fn identical_points_one_cluster() {
        let rows = vec![vec![3.0, 3.0]; 20];
        let model = KMeans::fit(
            &rows,
            &KMeansConfig {
                k: 4,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(model.predict(&[3.0, 3.0]), model.predict(&[3.0, 3.0]));
        assert!(model.inertia < 1e-12);
    }

    #[test]
    fn predict_assigns_nearest() {
        let (rows, _) = three_blobs(40, 3);
        let model = KMeans::fit(
            &rows,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        );
        let near_origin = model.predict(&[0.2, -0.1]);
        let same = model.predict(&[0.0, 0.0]);
        assert_eq!(near_origin, same);
    }

    #[test]
    fn nonfinite_row_does_not_poison_fit() {
        // Regression: one NaN coordinate made the k-means++ weights and
        // Lloyd centroid sums NaN, and the restart reduction panicked on
        // "finite inertia". The row is now clamped to 0 before fitting.
        let (mut rows, _) = three_blobs(20, 5);
        rows.push(vec![f64::NAN, f64::INFINITY]);
        let model = KMeans::fit(
            &rows,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        );
        assert!(model.inertia.is_finite());
        for c in &model.centroids {
            assert!(c.iter().all(|x| x.is_finite()), "centroid {c:?}");
        }
    }

    #[test]
    fn constant_rate_app_classifies_without_poisoning() {
        // A constant-rate app produces a zero-variance live window:
        // after standardization its z-scores must be exactly 0 (not
        // NaN), and clustering alongside varied apps must stay finite.
        use crate::scaler::StandardScaler;
        let mut rows = vec![vec![7.0, 7.0]; 10]; // constant-rate fleet
        let (varied, _) = three_blobs(10, 6);
        rows.extend(varied);
        let scaler = StandardScaler::fit(&rows);
        let scaled = scaler.transform(&rows);
        assert!(
            scaled.iter().flatten().all(|z| z.is_finite()),
            "z-scores must be finite for a zero-variance window"
        );
        let model = KMeans::fit(
            &scaled,
            &KMeansConfig {
                k: 4,
                ..KMeansConfig::default()
            },
        );
        assert!(model.inertia.is_finite());
        let mut probe = vec![7.0, 7.0];
        scaler.transform_row(&mut probe);
        let cluster = model.predict(&probe);
        assert!(cluster < model.k());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (rows, _) = three_blobs(40, 4);
        let fit = |k| {
            KMeans::fit(
                &rows,
                &KMeansConfig {
                    k,
                    ..KMeansConfig::default()
                },
            )
            .inertia
        };
        assert!(fit(3) < fit(1));
        assert!(fit(6) <= fit(3) + 1e-9);
    }
}

//! Deterministic parallel execution for the offline FeMux pipeline.
//!
//! The offline pipeline — forecast labelling, feature extraction,
//! classifier fitting — is embarrassingly parallel across apps, blocks,
//! restarts, and trees, and dominates reproduction compute (the paper
//! reports ~120 compute-hours of labelling). This crate provides the one
//! substrate every hot loop shares:
//!
//! - [`par_map`]: order-preserving map over a slice; item `i`'s result
//!   lands at output index `i` regardless of which worker computed it or
//!   when it finished.
//! - [`par_map_chunked`]: the same, scheduled in fixed-size contiguous
//!   chunks to amortize dispatch for cheap per-item work.
//!
//! **Determinism contract:** both functions return *exactly* what the
//! sequential `items.iter().map(f).collect()` returns, for any thread
//! count. Work units never share mutable state, results are collected by
//! input index, and any cross-item reduction is left to the (sequential)
//! caller, so floating-point evaluation order never depends on
//! scheduling. The test suites in `crates/core` and `tests/` enforce
//! byte-identical output between `FEMUX_THREADS=1` and multi-threaded
//! runs of the whole training pipeline.
//!
//! **Panic contract:** a panic inside the mapped closure is propagated
//! to the caller (via [`std::thread::scope`]'s join), never swallowed.
//!
//! Thread count comes from, in priority order: a process-wide test
//! override ([`override_threads`]), the `FEMUX_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide thread-count override; 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Returns the worker count parallel sections will use.
///
/// Priority: active [`override_threads`] guard, then `FEMUX_THREADS`
/// (values that fail to parse, or `0`, are ignored), then the machine's
/// available parallelism, then 1.
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FEMUX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Forces [`thread_count`] to `n` until the returned guard drops.
///
/// Intended for tests and benchmarks that compare thread counts within
/// one process. The override is process-global; because every parallel
/// section is deterministic by construction, concurrently running tests
/// observe at worst a different *speed*, never a different result.
pub fn override_threads(n: usize) -> ThreadCountGuard {
    let previous = OVERRIDE.swap(n, Ordering::Relaxed);
    ThreadCountGuard { previous }
}

/// Restores the previous thread-count override on drop.
#[must_use = "the override ends when the guard drops"]
pub struct ThreadCountGuard {
    previous: usize,
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.previous, Ordering::Relaxed);
    }
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Each worker repeatedly claims the next unprocessed index (dynamic
/// scheduling, so skewed per-item costs still balance) and sends
/// `(index, result)` back to the caller, which slots results by index.
/// With one thread (or one item) the map runs inline with no pool.
///
/// # Panics
///
/// Re-raises any panic from `f` once all workers have stopped.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    record_dispatch(items.len());
    par_map_impl(items, thread_count(), f)
}

/// [`par_map`] with an explicit worker count instead of the global
/// [`thread_count`]. Output is identical for every `threads` value.
pub fn par_map_threads<T, U, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    record_dispatch(items.len());
    par_map_impl(items, threads, f)
}

/// Counts one parallel-section dispatch. Only scheduling-invariant
/// quantities are recorded (sections and items — never workers spawned
/// or chunks formed, which legitimately vary with the thread count), so
/// telemetry reports stay byte-identical across `FEMUX_THREADS`.
fn record_dispatch(items: usize) {
    femux_obs::counter_add("par.sections", 1);
    femux_obs::counter_add("par.items", items as u64);
}

/// Flushes the worker's telemetry sink on scope exit — normal return
/// *and* unwind — so a panicking worker never loses the observations it
/// already made.
struct FlushOnExit;

impl Drop for FlushOnExit {
    fn drop(&mut self) {
        femux_obs::flush_thread();
    }
}

/// The actual map, shared by every public entry point so each dispatch
/// is counted exactly once regardless of which path (inline, pooled,
/// chunked) executes it.
fn par_map_impl<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let n = items.len();
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                // Scoped threads wake the owner before TLS destructors
                // run, so the telemetry sink must be flushed explicitly
                // or a drain right after this section could miss it.
                // A drop guard keeps that true when `f` panics: the
                // unwind still flushes whatever the worker recorded
                // before dying.
                let _flush = FlushOnExit;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i, &items[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // If a worker panics it drops its sender without sending; the
        // loop then ends early and the scope re-raises the panic.
        for (i, result) in rx {
            out[i] = Some(result);
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// Maps `f` over `items` in parallel, scheduling whole contiguous chunks
/// of `chunk_len` items per dispatch, and preserving input order.
///
/// Semantically identical to [`par_map`]; use it when per-item work is
/// too cheap to pay one channel send per item (e.g. nearest-centroid
/// assignment over thousands of small rows). Chunk boundaries depend
/// only on `chunk_len`, never on the thread count, so output is
/// byte-identical across thread counts.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; re-raises any panic from `f`.
pub fn par_map_chunked<T, U, F>(
    items: &[T],
    chunk_len: usize,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    record_dispatch(items.len());
    let threads = thread_count();
    if threads <= 1 || items.len() <= chunk_len {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let mapped = par_map_impl(&chunks, threads, |ci, chunk| {
        let base = ci * chunk_len;
        chunk
            .iter()
            .enumerate()
            .map(|(j, x)| f(base + j, x))
            .collect::<Vec<U>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in mapped {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global override/env.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_order() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(8);
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_matches_per_item() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(4);
        let items: Vec<f64> = (0..5_001).map(|i| i as f64).collect();
        let a = par_map(&items, |_, &x| x.sin());
        let b = par_map_chunked(&items, 64, |_, &x| x.sin());
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let _guard = ENV_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..4_096).collect();
        let one = {
            let _t = override_threads(1);
            par_map(&items, |_, &x| x.wrapping_mul(0x9E37_79B9))
        };
        let many = {
            let _t = override_threads(7);
            par_map(&items, |_, &x| x.wrapping_mul(0x9E37_79B9))
        };
        assert_eq!(one, many);
    }

    #[test]
    fn skewed_work_still_ordered() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(4);
        // Early items are the slowest, so naive static chunking would
        // finish out of order; dynamic claiming plus index-slotting must
        // still return input order.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |_, &x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn propagates_panics() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(4);
        let items: Vec<u32> = (0..256).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |_, &x| {
                assert!(x != 100, "boom at {x}");
                x
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn flush_runs_even_when_a_worker_panics() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(4);
        let _obs = femux_obs::scoped(false);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |_, &x| {
                femux_obs::counter_add("par.test.items_started", 1);
                assert!(x != 40, "boom at {x}");
                x
            })
        });
        assert!(result.is_err(), "panic must still propagate");
        // Every item's counter increment must survive — including the
        // panicking item's own, recorded on the worker that died. The
        // surviving workers drain the remaining items (the receiver
        // runs until every sender drops), and the drop guard flushes
        // the dead worker's sink mid-unwind, so the merged report is
        // complete, not short by one worker's share.
        let report = femux_obs::collect();
        assert_eq!(
            report.counters.get("par.test.items_started"),
            Some(&64),
            "a panicking worker must not lose its telemetry"
        );
    }

    #[test]
    fn env_var_sets_thread_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("FEMUX_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("FEMUX_THREADS", "not-a-number");
        assert!(thread_count() >= 1);
        std::env::set_var("FEMUX_THREADS", "0");
        assert!(thread_count() >= 1);
        std::env::remove_var("FEMUX_THREADS");
        assert!(thread_count() >= 1);
    }

    #[test]
    fn override_wins_and_restores() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("FEMUX_THREADS", "2");
        {
            let _t = override_threads(5);
            assert_eq!(thread_count(), 5);
        }
        assert_eq!(thread_count(), 2);
        std::env::remove_var("FEMUX_THREADS");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = ENV_LOCK.lock().unwrap();
        let _t = override_threads(4);
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u8], |_, &x| x + 1), vec![42]);
        assert_eq!(par_map_chunked(&[41u8], 16, |_, &x| x + 1), vec![42]);
    }
}

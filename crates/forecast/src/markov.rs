//! Markov Chain forecaster.
//!
//! For repetitive invocation patterns, FeMux includes a discrete Markov
//! Chain over quantized concurrency levels (§4.3.3; four states, as in
//! the paper). The window is quantile-binned into states, a transition
//! matrix is estimated with Laplace smoothing, and forecasts propagate
//! the state distribution forward, reporting the expected value of the
//! state centroids.

use crate::Forecaster;

/// A k-state Markov Chain forecaster over quantized levels.
#[derive(Debug, Clone)]
pub struct MarkovForecaster {
    states: usize,
}

impl MarkovForecaster {
    /// Creates a Markov forecaster with `states` quantization levels.
    ///
    /// # Panics
    ///
    /// Panics if `states < 2`.
    pub fn new(states: usize) -> Self {
        assert!(states >= 2, "need at least two states");
        MarkovForecaster { states }
    }

    /// The paper's configuration: four states.
    pub fn paper() -> Self {
        MarkovForecaster::new(4)
    }

    /// Quantizes the series into state indices and state centroids using
    /// equal-probability (quantile) bins.
    fn quantize(&self, history: &[f64]) -> (Vec<usize>, Vec<f64>) {
        let mut sorted = history.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b).expect("values must not be NaN")
        });
        // Bin edges at interior quantiles.
        let edges: Vec<f64> = (1..self.states)
            .map(|q| {
                femux_stats::desc::quantile_sorted(
                    &sorted,
                    q as f64 / self.states as f64,
                )
            })
            .collect();
        let assign = |x: f64| edges.iter().filter(|e| x > **e).count();
        let labels: Vec<usize> =
            history.iter().map(|&x| assign(x)).collect();
        // Centroid = mean of members; empty states fall back to the
        // window mean.
        let mut sums = vec![0.0; self.states];
        let mut counts = vec![0usize; self.states];
        for (&x, &s) in history.iter().zip(&labels) {
            sums[s] += x;
            counts[s] += 1;
        }
        let global = femux_stats::desc::mean(history);
        let centroids: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { global })
            .collect();
        (labels, centroids)
    }
}

impl Forecaster for MarkovForecaster {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        if history.len() < 2 * self.states {
            return vec![history[history.len() - 1].max(0.0); horizon];
        }
        let k = self.states;
        let (labels, centroids) = self.quantize(history);
        // Transition counts with Laplace smoothing.
        let mut trans = vec![vec![1.0; k]; k];
        for w in labels.windows(2) {
            trans[w[0]][w[1]] += 1.0;
        }
        for row in &mut trans {
            let total: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= total;
            }
        }
        // Start from a point mass on the last observed state.
        let mut dist = vec![0.0; k];
        dist[labels[labels.len() - 1]] = 1.0;
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut next = vec![0.0; k];
            for (s, &p) in dist.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                for (t, &q) in trans[s].iter().enumerate() {
                    next[t] += p * q;
                }
            }
            dist = next;
            let expected: f64 = dist
                .iter()
                .zip(&centroids)
                .map(|(p, c)| p * c)
                .sum();
            out.push(expected.max(0.0));
        }
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern() {
        // 0, 10, 0, 10, ...: after a 0 the chain should predict high.
        let history: Vec<f64> = (0..120)
            .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        // history ends on index 119 (odd -> 10); next is 0.
        let mut f = MarkovForecaster::paper();
        let pred = f.forecast(&history, 2);
        assert!(pred[0] < 3.0, "after high, expect low: {}", pred[0]);
        assert!(pred[1] > 7.0, "then high again: {}", pred[1]);
    }

    #[test]
    fn constant_series() {
        let mut f = MarkovForecaster::paper();
        let pred = f.forecast(&[5.0; 100], 3);
        for p in pred {
            assert!((p - 5.0).abs() < 1e-9, "prediction {p}");
        }
    }

    #[test]
    fn long_run_converges_to_stationary_mean() {
        // An ergodic chain's far forecast approaches the window mean.
        let history: Vec<f64> = (0..200)
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => 2.0,
                2 => 8.0,
                _ => 10.0,
            })
            .collect();
        let mut f = MarkovForecaster::paper();
        let pred = f.forecast(&history, 100);
        let mean = femux_stats::desc::mean(&history);
        assert!(
            (pred[99] - mean).abs() < 1.5,
            "far prediction {} vs mean {mean}",
            pred[99]
        );
    }

    #[test]
    fn short_history_persists_last() {
        let mut f = MarkovForecaster::paper();
        assert_eq!(f.forecast(&[1.0, 2.0], 2), vec![2.0, 2.0]);
        assert_eq!(f.forecast(&[], 1), vec![0.0]);
    }

    #[test]
    fn quantize_balances_states() {
        let f = MarkovForecaster::paper();
        let history: Vec<f64> = (0..400).map(|i| (i % 100) as f64).collect();
        let (labels, centroids) = f.quantize(&history);
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 100.0).abs() < 30.0,
                "unbalanced states {counts:?}"
            );
        }
        assert!(centroids.windows(2).all(|w| w[0] <= w[1]));
    }
}

//! A from-scratch LSTM forecaster.
//!
//! This is the substrate for the Aquatope baseline (§5.1.1): Aquatope
//! trains a separate LSTM per application on a 48-minute input window.
//! The paper's comparison hinges on the *cost profile* of that approach —
//! training 4x slower and inference ~28x slower than FeMux's lightweight
//! forecasters — which any per-app gradient-trained LSTM reproduces.
//!
//! The implementation is a single-layer LSTM with a linear readout,
//! trained by truncated backpropagation through time with Adam. Gradients
//! are verified against numerical differentiation in the tests.

use femux_stats::rng::Rng;

use crate::Forecaster;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Flat parameter layout for one gate: `[W_x (h), U_h (h*h), b (h)]` per
/// hidden unit — we store all four gates plus the readout in one vector so
/// Adam and the numerical gradient check stay simple.
#[derive(Debug, Clone)]
struct Params {
    hidden: usize,
    /// Gate weights: for each gate g in {i, f, o, c} and hidden unit j:
    /// input weight, recurrent weights (hidden), bias.
    theta: Vec<f64>,
}

const GATES: usize = 4;

impl Params {
    fn gate_stride(hidden: usize) -> usize {
        1 + hidden + 1 // input weight + recurrent weights + bias
    }

    fn len(hidden: usize) -> usize {
        GATES * hidden * Self::gate_stride(hidden) + hidden + 1 // + readout
    }

    fn new(hidden: usize, rng: &mut Rng) -> Self {
        let n = Self::len(hidden);
        let scale = 1.0 / (hidden as f64).sqrt();
        let mut theta: Vec<f64> =
            (0..n).map(|_| rng.normal() * scale * 0.5).collect();
        // Forget-gate bias starts positive (standard initialization).
        for j in 0..hidden {
            let idx = Self::gate_base(hidden, 1, j) + 1 + hidden;
            theta[idx] = 1.0;
        }
        Params { hidden, theta }
    }

    fn gate_base(hidden: usize, gate: usize, unit: usize) -> usize {
        (gate * hidden + unit) * Self::gate_stride(hidden)
    }

    fn readout_base(&self) -> usize {
        GATES * self.hidden * Self::gate_stride(self.hidden)
    }
}

/// Cached activations for one timestep (needed by backprop).
#[derive(Debug, Clone)]
struct StepCache {
    x: f64,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
}

fn forward_step(p: &Params, x: f64, h_prev: &[f64], c_prev: &[f64]) -> StepCache {
    let hdim = p.hidden;
    let mut gates = vec![vec![0.0; hdim]; GATES];
    for (gi, gate) in gates.iter_mut().enumerate() {
        for (j, slot) in gate.iter_mut().enumerate() {
            let base = Params::gate_base(hdim, gi, j);
            let mut acc = p.theta[base] * x;
            for (k, &h) in h_prev.iter().enumerate() {
                acc += p.theta[base + 1 + k] * h;
            }
            acc += p.theta[base + 1 + hdim];
            *slot = acc;
        }
    }
    let i: Vec<f64> = gates[0].iter().map(|&z| sigmoid(z)).collect();
    let f: Vec<f64> = gates[1].iter().map(|&z| sigmoid(z)).collect();
    let o: Vec<f64> = gates[2].iter().map(|&z| sigmoid(z)).collect();
    let g: Vec<f64> = gates[3].iter().map(|&z| z.tanh()).collect();
    let c: Vec<f64> = (0..hdim)
        .map(|j| f[j] * c_prev[j] + i[j] * g[j])
        .collect();
    let h: Vec<f64> = (0..hdim).map(|j| o[j] * c[j].tanh()).collect();
    StepCache {
        x,
        h_prev: h_prev.to_vec(),
        c_prev: c_prev.to_vec(),
        i,
        f,
        o,
        g,
        c,
        h,
    }
}

/// Runs the full sequence and returns (prediction, caches).
fn forward(p: &Params, xs: &[f64]) -> (f64, Vec<StepCache>) {
    let hdim = p.hidden;
    let mut h = vec![0.0; hdim];
    let mut c = vec![0.0; hdim];
    let mut caches = Vec::with_capacity(xs.len());
    for &x in xs {
        let cache = forward_step(p, x, &h, &c);
        h = cache.h.clone();
        c = cache.c.clone();
        caches.push(cache);
    }
    let base = p.readout_base();
    let mut y = p.theta[base + hdim];
    for (j, &hj) in h.iter().enumerate() {
        y += p.theta[base + j] * hj;
    }
    (y, caches)
}

/// Backpropagates d(loss)/d(y) = `dy` through the cached sequence,
/// returning the gradient vector (same layout as `theta`).
fn backward(p: &Params, caches: &[StepCache], dy: f64) -> Vec<f64> {
    let hdim = p.hidden;
    let mut grad = vec![0.0; p.theta.len()];
    let base = p.readout_base();
    let last_h = &caches[caches.len() - 1].h;
    for j in 0..hdim {
        grad[base + j] = dy * last_h[j];
    }
    grad[base + hdim] = dy;
    let mut dh: Vec<f64> =
        (0..hdim).map(|j| dy * p.theta[base + j]).collect();
    let mut dc = vec![0.0; hdim];
    for cache in caches.iter().rev() {
        let mut dh_prev = vec![0.0; hdim];
        let mut dc_prev = vec![0.0; hdim];
        for j in 0..hdim {
            let tanh_c = cache.c[j].tanh();
            let do_ = dh[j] * tanh_c;
            let dcj = dc[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
            let di = dcj * cache.g[j];
            let df = dcj * cache.c_prev[j];
            let dg = dcj * cache.i[j];
            dc_prev[j] = dcj * cache.f[j];
            // Pre-activation gradients.
            let dzi = di * cache.i[j] * (1.0 - cache.i[j]);
            let dzf = df * cache.f[j] * (1.0 - cache.f[j]);
            let dzo = do_ * cache.o[j] * (1.0 - cache.o[j]);
            let dzg = dg * (1.0 - cache.g[j] * cache.g[j]);
            for (gi, dz) in
                [dzi, dzf, dzo, dzg].into_iter().enumerate()
            {
                let gbase = Params::gate_base(hdim, gi, j);
                grad[gbase] += dz * cache.x;
                for (k, &hk) in cache.h_prev.iter().enumerate() {
                    grad[gbase + 1 + k] += dz * hk;
                    dh_prev[k] += dz * p.theta[gbase + 1 + k];
                }
                grad[gbase + 1 + hdim] += dz;
            }
        }
        dh = dh_prev;
        dc = dc_prev;
    }
    grad
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Hidden units.
    pub hidden: usize,
    /// Input window length (Aquatope: 48 minutes).
    pub window: usize,
    /// Training epochs over the sample set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Maximum training samples per epoch (subsampled deterministically).
    pub max_samples: usize,
    /// RNG seed for initialization and subsampling.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 12,
            window: 48,
            epochs: 8,
            learning_rate: 0.01,
            max_samples: 400,
            seed: 17,
        }
    }
}

/// A per-application LSTM forecaster (Aquatope-style).
#[derive(Debug, Clone)]
pub struct LstmForecaster {
    cfg: LstmConfig,
    params: Params,
    scale: f64,
    trained: bool,
}

impl LstmForecaster {
    /// Creates an untrained LSTM; until [`LstmForecaster::train`] is
    /// called it falls back to last-value persistence.
    pub fn new(cfg: LstmConfig) -> Self {
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let params = Params::new(cfg.hidden, &mut rng);
        LstmForecaster {
            cfg,
            params,
            scale: 1.0,
            trained: false,
        }
    }

    /// Returns whether the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Trains on a series (e.g. the first seven days of an app's
    /// per-minute concurrency) by sliding `window`-length inputs with
    /// next-value targets. Returns the final epoch's mean squared error
    /// in normalized units.
    pub fn train(&mut self, series: &[f64]) -> f64 {
        let w = self.cfg.window;
        if series.len() < w + 2 {
            return f64::NAN;
        }
        self.scale = series
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            .max(1e-9);
        let xs: Vec<f64> =
            series.iter().map(|&v| v / self.scale).collect();
        let n_samples = xs.len() - w;
        let mut rng = Rng::seed_from_u64(self.cfg.seed ^ 0x5EED);
        let mut order: Vec<usize> = (0..n_samples).collect();
        // Adam state.
        let mut m = vec![0.0; self.params.theta.len()];
        let mut v = vec![0.0; self.params.theta.len()];
        let mut step = 0usize;
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let mut last_mse = f64::NAN;
        for _ in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let take = order.len().min(self.cfg.max_samples);
            let mut sse = 0.0;
            for &s in &order[..take] {
                let input = &xs[s..s + w];
                let target = xs[s + w];
                let (y, caches) = forward(&self.params, input);
                let err = y - target;
                sse += err * err;
                let grad = backward(&self.params, &caches, 2.0 * err);
                step += 1;
                let lr = self.cfg.learning_rate;
                for (j, g) in grad.iter().enumerate() {
                    // Clip to keep early training stable.
                    let g = g.clamp(-5.0, 5.0);
                    m[j] = b1 * m[j] + (1.0 - b1) * g;
                    v[j] = b2 * v[j] + (1.0 - b2) * g * g;
                    let mh = m[j] / (1.0 - b1.powi(step as i32));
                    let vh = v[j] / (1.0 - b2.powi(step as i32));
                    self.params.theta[j] -= lr * mh / (vh.sqrt() + eps);
                }
            }
            last_mse = sse / take as f64;
        }
        self.trained = true;
        last_mse
    }
}

impl Forecaster for LstmForecaster {
    fn name(&self) -> &'static str {
        "lstm"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        if !self.trained || history.len() < self.cfg.window {
            let last = history[history.len() - 1];
            return vec![last.max(0.0); horizon];
        }
        let w = self.cfg.window;
        let mut xs: Vec<f64> = history[history.len() - w..]
            .iter()
            .map(|&v| v / self.scale)
            .collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let (y, _) = forward(&self.params, &xs[xs.len() - w..]);
            // Normalized inputs live in [0, 1]; cap iterated outputs so
            // autoregressive feedback cannot run away.
            let y = y.clamp(0.0, 10.0);
            xs.push(y);
            out.push(y * self.scale);
        }
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = Rng::seed_from_u64(1);
        let hidden = 3;
        let params = Params::new(hidden, &mut rng);
        let xs: Vec<f64> = (0..6).map(|_| rng.f64()).collect();
        let target = 0.7;
        let loss = |p: &Params| {
            let (y, _) = forward(p, &xs);
            (y - target) * (y - target)
        };
        let (y, caches) = forward(&params, &xs);
        let grad = backward(&params, &caches, 2.0 * (y - target));
        let eps = 1e-6;
        for j in (0..params.theta.len()).step_by(7) {
            let mut plus = params.clone();
            plus.theta[j] += eps;
            let mut minus = params.clone();
            minus.theta[j] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (grad[j] - numeric).abs() < 1e-4,
                "param {j}: analytic {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn learns_sine_wave() {
        let series: Vec<f64> = (0..600)
            .map(|t| {
                2.0 + (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
            })
            .collect();
        let mut lstm = LstmForecaster::new(LstmConfig {
            hidden: 8,
            window: 24,
            epochs: 12,
            learning_rate: 0.02,
            max_samples: 300,
            seed: 2,
        });
        let mse = lstm.train(&series[..500]);
        assert!(mse < 0.02, "training MSE {mse}");
        // One-step forecasts on held-out data.
        let mut err = 0.0;
        for t in 500..560 {
            let pred = lstm.forecast(&series[..t], 1)[0];
            err += (pred - series[t]).abs();
        }
        let mae = err / 60.0;
        assert!(mae < 0.35, "held-out MAE {mae}");
    }

    #[test]
    fn untrained_falls_back_to_naive() {
        let mut lstm = LstmForecaster::new(LstmConfig::default());
        assert!(!lstm.is_trained());
        assert_eq!(lstm.forecast(&[1.0, 3.0], 2), vec![3.0, 3.0]);
    }

    #[test]
    fn training_requires_enough_data() {
        let mut lstm = LstmForecaster::new(LstmConfig::default());
        assert!(lstm.train(&[1.0; 10]).is_nan());
        assert!(!lstm.is_trained());
    }

    #[test]
    fn forecasts_never_negative() {
        let series: Vec<f64> =
            (0..300).map(|t| ((t % 7) as f64 - 3.0).max(0.0)).collect();
        let mut lstm = LstmForecaster::new(LstmConfig {
            window: 16,
            epochs: 3,
            ..LstmConfig::default()
        });
        lstm.train(&series);
        for p in lstm.forecast(&series, 20) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn deterministic_training() {
        let series: Vec<f64> =
            (0..200).map(|t| (t % 10) as f64).collect();
        let cfg = LstmConfig {
            window: 12,
            epochs: 2,
            ..LstmConfig::default()
        };
        let mut a = LstmForecaster::new(cfg.clone());
        let mut b = LstmForecaster::new(cfg);
        let ma = a.train(&series);
        let mb = b.train(&series);
        assert_eq!(ma, mb);
        assert_eq!(a.forecast(&series, 3), b.forecast(&series, 3));
    }
}

//! FFT (harmonic) forecaster.
//!
//! Extrapolates the window's strongest harmonics into the future, as used
//! by IceBreaker and by Huawei's characterization work, and as one of
//! FeMux's multiplexed forecasters for *periodic* blocks. FeMux keeps the
//! top 10 harmonics (§4.3.3).

use femux_stats::fft::harmonic_extrapolate;

use crate::Forecaster;

/// A top-k harmonic extrapolation forecaster.
#[derive(Debug, Clone)]
pub struct FftForecaster {
    harmonics: usize,
}

impl FftForecaster {
    /// Creates an FFT forecaster keeping the `harmonics` strongest
    /// components.
    ///
    /// # Panics
    ///
    /// Panics if `harmonics == 0`.
    pub fn new(harmonics: usize) -> Self {
        assert!(harmonics > 0, "need at least one harmonic");
        FftForecaster { harmonics }
    }

    /// The paper's configuration: top 10 harmonics.
    pub fn paper() -> Self {
        FftForecaster::new(10)
    }
}

impl Forecaster for FftForecaster {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        let mut out: Vec<f64> =
            harmonic_extrapolate(history, self.harmonics, horizon)
                .into_iter()
                .map(|p| p.max(0.0))
                .collect();
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_signal_extrapolates() {
        let n = 240;
        let f = |t: f64| {
            3.0 + 2.0
                * (2.0 * std::f64::consts::PI * t / 60.0).sin()
        };
        let history: Vec<f64> = (0..n).map(|t| f(t as f64)).collect();
        let mut fc = FftForecaster::paper();
        let pred = fc.forecast(&history, 30);
        for (h, p) in pred.iter().enumerate() {
            let truth = f((n + h) as f64);
            assert!((p - truth).abs() < 0.1, "h={h} {p} vs {truth}");
        }
    }

    #[test]
    fn constant_signal_persists() {
        let history = vec![4.0; 120];
        let mut fc = FftForecaster::paper();
        for p in fc.forecast(&history, 10) {
            assert!((p - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_traffic_forecasts_zero() {
        // The paper notes IceBreaker's FFT "often forecasts zero" for
        // low-traffic apps — the harmonic mean of an all-zero window is
        // zero.
        let history = vec![0.0; 120];
        let mut fc = FftForecaster::paper();
        assert_eq!(fc.forecast(&history, 5), vec![0.0; 5]);
    }

    #[test]
    fn never_negative() {
        // A strong harmonic around a small mean would dip negative
        // without clamping.
        let history: Vec<f64> = (0..120)
            .map(|t| {
                (0.5 + (2.0 * std::f64::consts::PI * t as f64 / 30.0)
                    .sin())
                .max(0.0)
            })
            .collect();
        let mut fc = FftForecaster::new(3);
        for p in fc.forecast(&history, 60) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn nonfinite_history_yields_finite_forecast_without_panicking() {
        // Regression: a single NaN sample (e.g. a lost concurrency
        // report before sanitization) used to propagate NaN amplitudes
        // into `top_harmonics`' ranking sort, which panicked on the
        // non-total order ("amplitudes are finite"). Non-finite bins are
        // now dropped before ranking, so the forecaster degrades to the
        // surviving harmonics and sanitization keeps the output finite.
        for poison in [f64::NAN, f64::INFINITY] {
            let mut history: Vec<f64> = (0..128)
                .map(|t| {
                    2.0 + (2.0 * std::f64::consts::PI * t as f64 / 32.0)
                        .sin()
                })
                .collect();
            history[40] = poison;
            let mut fc = FftForecaster::paper();
            let pred = fc.forecast(&history, 16);
            assert_eq!(pred.len(), 16);
            for p in pred {
                assert!(p.is_finite() && p >= 0.0, "poison={poison}: {p}");
            }
        }
    }

    #[test]
    fn empty_history() {
        let mut fc = FftForecaster::paper();
        assert_eq!(fc.forecast(&[], 4), vec![0.0; 4]);
    }
}

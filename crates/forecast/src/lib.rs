//! Lightweight traffic forecasters for serverless lifetime management.
//!
//! FeMux multiplexes the forecasters in this crate per application block
//! (§4.3.3 of the paper): [`ar::ArForecaster`] for stationary linear
//! traffic, [`setar::SetarForecaster`] for piece-wise linear
//! non-stationary traffic, [`fft::FftForecaster`] for periodic traffic,
//! [`smoothing::SesForecaster`] / [`smoothing::HoltForecaster`] for dense
//! trend-following, and [`markov::MarkovForecaster`] for repetitive
//! patterns. [`simple`] holds the Knative moving-average and naive
//! references, and [`lstm::LstmForecaster`] is the per-app neural model
//! underpinning the Aquatope baseline.
//!
//! All forecasters consume a history window of per-step values (FeMux
//! uses 120 minutes of per-minute average concurrency) and predict the
//! next `horizon` steps. Refitting happens on every call; each model is
//! cheap enough that a forecast completes in single-digit milliseconds,
//! which is the property the paper's scalability study (§5.2) relies on.

pub mod ar;
pub mod fft;
pub mod lstm;
pub mod markov;
pub mod seasonal;
pub mod setar;
pub mod simple;
pub mod smoothing;

/// A traffic forecaster.
///
/// Implementations must be deterministic given the same history: the
/// offline training pipeline simulates forecasts for thousands of
/// application blocks and relies on reproducibility.
pub trait Forecaster: Send {
    /// Stable, short identifier (used in experiment output and as the
    /// classifier's label space).
    fn name(&self) -> &'static str;

    /// Forecasts the next `horizon` steps given the trailing history
    /// window (oldest first). Returned values are clamped to be
    /// non-negative; the vector always has exactly `horizon` entries.
    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64>;
}

/// The identity of a forecaster in FeMux's multiplexed set.
///
/// This enum is the label space of the block classifier and the unit of
/// forecaster switching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ForecasterKind {
    /// Autoregressive, 10 lags.
    Ar,
    /// Self-excitation threshold AR, 10 lags, up to 2 thresholds.
    Setar,
    /// Top-10-harmonic FFT extrapolation.
    Fft,
    /// Simple exponential smoothing, dynamic alpha.
    Ses,
    /// Holt double exponential smoothing, dynamic alpha/beta.
    Holt,
    /// Four-state Markov chain.
    Markov,
    /// Sliding-window moving average (Knative default behaviour).
    MovingAverage,
    /// Last-value persistence.
    Naive,
    /// Seasonal-naive with spectral season detection (extension
    /// forecaster, not in the paper's set).
    SeasonalNaive,
}

impl ForecasterKind {
    /// FeMux's forecaster set as configured in the paper.
    pub const FEMUX_SET: [ForecasterKind; 6] = [
        ForecasterKind::Ar,
        ForecasterKind::Setar,
        ForecasterKind::Fft,
        ForecasterKind::Ses,
        ForecasterKind::Holt,
        ForecasterKind::Markov,
    ];

    /// Every kind, including the reference forecasters.
    pub const ALL: [ForecasterKind; 9] = [
        ForecasterKind::Ar,
        ForecasterKind::Setar,
        ForecasterKind::Fft,
        ForecasterKind::Ses,
        ForecasterKind::Holt,
        ForecasterKind::Markov,
        ForecasterKind::MovingAverage,
        ForecasterKind::Naive,
        ForecasterKind::SeasonalNaive,
    ];

    /// Returns the kind's stable name.
    pub fn name(self) -> &'static str {
        match self {
            ForecasterKind::Ar => "ar",
            ForecasterKind::Setar => "setar",
            ForecasterKind::Fft => "fft",
            ForecasterKind::Ses => "exp-smoothing",
            ForecasterKind::Holt => "holt",
            ForecasterKind::Markov => "markov",
            ForecasterKind::MovingAverage => "moving-average",
            ForecasterKind::Naive => "naive",
            ForecasterKind::SeasonalNaive => "seasonal-naive",
        }
    }

    /// Instantiates the forecaster with the paper's hyperparameters.
    pub fn build(self) -> Box<dyn Forecaster> {
        femux_obs::counter_add(
            &format!("forecast.built.{}", self.name()),
            1,
        );
        match self {
            ForecasterKind::Ar => Box::new(ar::ArForecaster::paper()),
            ForecasterKind::Setar => {
                Box::new(setar::SetarForecaster::paper())
            }
            ForecasterKind::Fft => Box::new(fft::FftForecaster::paper()),
            ForecasterKind::Ses => Box::new(smoothing::SesForecaster),
            ForecasterKind::Holt => Box::new(smoothing::HoltForecaster),
            ForecasterKind::Markov => {
                Box::new(markov::MarkovForecaster::paper())
            }
            ForecasterKind::MovingAverage => {
                Box::new(simple::MovingAverageForecaster::knative())
            }
            ForecasterKind::Naive => Box::new(simple::NaiveForecaster),
            ForecasterKind::SeasonalNaive => {
                Box::new(seasonal::SeasonalNaiveForecaster::auto())
            }
        }
    }
}

impl std::fmt::Display for ForecasterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Clamps a forecast to the trait's output contract in place: every
/// value finite and non-negative (`NaN`, `±∞`, and negatives become
/// zero — zero, not a guess, because a forecaster emitting garbage has
/// forfeited any claim about demand).
///
/// Every in-tree forecaster calls this at the tail of
/// [`Forecaster::forecast`], so numerical blow-ups deep in a model
/// (an unstable AR fit, an FFT overflow) can never leak past the trait
/// boundary. Existing algorithmic clamps stay in place; this is the
/// final backstop, not a replacement.
pub fn sanitize_forecast(values: &mut [f64]) {
    for v in values {
        if !v.is_finite() || *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Simulates rolling one-step forecasts over a series: at each step `t >=
/// warmup`, the forecaster sees `series[t - window .. t]` (or less during
/// early steps) and predicts step `t`. Returns the prediction for every
/// step in `warmup..series.len()`.
///
/// This is the workhorse of the offline pipeline ("simulate forecasts for
/// 13k applications", §4.3.3) and of the RUM-vs-MAE studies.
pub fn rolling_forecast(
    forecaster: &mut dyn Forecaster,
    series: &[f64],
    window: usize,
    warmup: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len().saturating_sub(warmup));
    for t in warmup..series.len() {
        let start = t.saturating_sub(window);
        out.push(forecaster.forecast(&series[start..t], 1)[0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let mut names: Vec<&str> =
            ForecasterKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ForecasterKind::ALL.len());
    }

    #[test]
    fn build_matches_name() {
        for kind in ForecasterKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn every_forecaster_returns_horizon_values() {
        let history: Vec<f64> =
            (0..150).map(|t| ((t % 11) as f64) / 2.0).collect();
        for kind in ForecasterKind::ALL {
            let mut f = kind.build();
            for horizon in [0usize, 1, 5] {
                let pred = f.forecast(&history, horizon);
                assert_eq!(pred.len(), horizon, "{kind}");
                assert!(
                    pred.iter().all(|p| *p >= 0.0 && p.is_finite()),
                    "{kind} produced invalid values"
                );
            }
        }
    }

    #[test]
    fn sanitize_forecast_enforces_the_contract() {
        let mut values =
            [1.5, f64::NAN, -2.0, f64::INFINITY, 0.0, f64::NEG_INFINITY];
        sanitize_forecast(&mut values);
        assert_eq!(values, [1.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn every_forecaster_survives_adversarial_histories() {
        // Property: whatever (finite) history a forecaster is fed, its
        // output is exactly `horizon` finite, non-negative values. The
        // histories below are the known numerical trouble-makers:
        // degenerate windows, extreme dynamic range, and magnitudes
        // where squared errors overflow.
        let adversarial: Vec<(&str, Vec<f64>)> = vec![
            ("empty", Vec::new()),
            ("single", vec![2.0]),
            ("all-zeros", vec![0.0; 150]),
            ("constant", vec![3.5; 150]),
            (
                "spikes-1e6",
                (0..150)
                    .map(|t| if t % 17 == 0 { 1e6 } else { 0.1 })
                    .collect(),
            ),
            (
                "spikes-1e150",
                (0..150)
                    .map(|t| if t % 13 == 0 { 1e150 } else { 1.0 })
                    .collect(),
            ),
            (
                "alternating-extremes",
                (0..150)
                    .map(|t| if t % 2 == 0 { 1e-300 } else { 1e300 })
                    .collect(),
            ),
        ];
        for (label, history) in &adversarial {
            for kind in ForecasterKind::ALL {
                let mut f = kind.build();
                for horizon in [1usize, 4, 60] {
                    let pred = f.forecast(history, horizon);
                    assert_eq!(
                        pred.len(),
                        horizon,
                        "{kind} on {label}: wrong length"
                    );
                    assert!(
                        pred.iter().all(|p| p.is_finite() && *p >= 0.0),
                        "{kind} on {label} horizon {horizon} leaked a \
                         bad value: {pred:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rolling_forecast_shape_and_causality() {
        // A forecaster that echoes the last value should produce a
        // shifted copy of the series, proving no lookahead.
        let series: Vec<f64> = (0..50).map(|t| t as f64).collect();
        let mut naive = simple::NaiveForecaster;
        let preds = rolling_forecast(&mut naive, &series, 10, 5);
        assert_eq!(preds.len(), 45);
        for (k, p) in preds.iter().enumerate() {
            assert_eq!(*p, (k + 4) as f64);
        }
    }

    #[test]
    fn femux_set_excludes_references() {
        assert!(
            !ForecasterKind::FEMUX_SET.contains(&ForecasterKind::Naive)
        );
        assert!(!ForecasterKind::FEMUX_SET
            .contains(&ForecasterKind::MovingAverage));
        assert_eq!(ForecasterKind::FEMUX_SET.len(), 6);
    }
}

//! Trivial reference forecasters.
//!
//! - [`MovingAverageForecaster`] reproduces Knative's default autoscaler
//!   input: the mean of a sliding window (60 s stable window by default).
//! - [`NaiveForecaster`] persists the last observation; the weakest
//!   sensible baseline and a useful sanity bound in tests.

use crate::Forecaster;

/// Sliding-window moving average (Knative's stable-window behaviour).
#[derive(Debug, Clone)]
pub struct MovingAverageForecaster {
    window: usize,
}

impl MovingAverageForecaster {
    /// Creates a moving-average forecaster over the trailing `window`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverageForecaster { window }
    }

    /// Knative's default: a 1-minute window (1 sample at minute scale).
    pub fn knative() -> Self {
        MovingAverageForecaster::new(1)
    }
}

impl Forecaster for MovingAverageForecaster {
    fn name(&self) -> &'static str {
        "moving-average"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() {
            return vec![0.0; horizon];
        }
        let start = history.len().saturating_sub(self.window);
        let avg = femux_stats::desc::mean(&history[start..]).max(0.0);
        let mut out = vec![avg; horizon];
        crate::sanitize_forecast(&mut out);
        out
    }
}

/// Last-value persistence.
#[derive(Debug, Clone, Default)]
pub struct NaiveForecaster;

impl Forecaster for NaiveForecaster {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        let last = history.last().copied().unwrap_or(0.0).max(0.0);
        let mut out = vec![last; horizon];
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_uses_only_window() {
        let mut f = MovingAverageForecaster::new(2);
        let pred = f.forecast(&[100.0, 1.0, 3.0], 2);
        assert_eq!(pred, vec![2.0, 2.0]);
    }

    #[test]
    fn knative_window_is_last_sample() {
        let mut f = MovingAverageForecaster::knative();
        assert_eq!(f.forecast(&[9.0, 4.0], 1), vec![4.0]);
    }

    #[test]
    fn naive_persists() {
        let mut f = NaiveForecaster;
        assert_eq!(f.forecast(&[1.0, 2.0, 7.0], 3), vec![7.0; 3]);
        assert_eq!(f.forecast(&[], 2), vec![0.0; 2]);
    }

    #[test]
    fn moving_average_short_history() {
        let mut f = MovingAverageForecaster::new(10);
        assert_eq!(f.forecast(&[4.0, 6.0], 1), vec![5.0]);
        assert_eq!(f.forecast(&[], 1), vec![0.0]);
    }
}

//! Autoregressive forecaster.
//!
//! AR is the paper's canonical model for *stationary, linear* blocks
//! (§4.3.2, via Yule 1927). FeMux uses 10 lags, chosen empirically from a
//! parameter sweep over 1..20 (§4.3.3). Coefficients are refit on each
//! call from the recent history window via the Yule-Walker equations
//! (Levinson-Durbin), and multi-step forecasts iterate the one-step
//! predictor on its own outputs.

use femux_stats::acf::levinson_durbin;
use femux_stats::desc::mean;

use crate::Forecaster;

/// An AR(p) forecaster refit on every window.
#[derive(Debug, Clone)]
pub struct ArForecaster {
    order: usize,
}

impl ArForecaster {
    /// Creates an AR forecaster with the given lag order.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: usize) -> Self {
        assert!(order > 0, "AR order must be positive");
        ArForecaster { order }
    }

    /// The paper's configuration: 10 lags.
    pub fn paper() -> Self {
        ArForecaster::new(10)
    }
}

impl Forecaster for ArForecaster {
    fn name(&self) -> &'static str {
        "ar"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        let m = mean(history);
        let Some((phi, _)) = levinson_durbin(history, self.order.min(history.len() - 1))
        else {
            // Degenerate window (constant or too short): persist the mean.
            let mut out = vec![m.max(0.0); horizon];
            crate::sanitize_forecast(&mut out);
            return out;
        };
        let p = phi.len();
        // Iterated AR predictions can diverge when the fitted
        // polynomial is (numerically) unstable; cap at a multiple of the
        // window's peak.
        let cap = 10.0
            * (1.0 + history.iter().fold(0.0f64, |a, &b| a.max(b)));
        // Work on the centred series; extend it with predictions.
        let mut series: Vec<f64> =
            history.iter().map(|x| x - m).collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let n = series.len();
            let pred: f64 =
                (0..p).map(|i| phi[i] * series[n - 1 - i]).sum();
            let clamped = (pred + m).clamp(0.0, cap);
            series.push(clamped - m);
            out.push(clamped);
        }
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::rng::Rng;

    #[test]
    fn constant_series_persists() {
        let mut f = ArForecaster::paper();
        let history = vec![3.0; 120];
        let pred = f.forecast(&history, 5);
        for p in pred {
            assert!((p - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ar1_one_step_accuracy() {
        // x_t = 0.8 x_{t-1} + eps: prediction of the next value from the
        // window should be close to 0.8 * last (about the mean).
        let mut rng = Rng::seed_from_u64(1);
        let mut xs = vec![0.0];
        for _ in 0..2_000 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.8 * prev + 0.1 * rng.normal());
        }
        let window = &xs[xs.len() - 500..];
        let mut f = ArForecaster::new(5);
        let pred = f.forecast(window, 1)[0];
        let m = femux_stats::desc::mean(window);
        let expected =
            (0.8 * (window[window.len() - 1] - m) + m).max(0.0);
        assert!(
            (pred - expected).abs() < 0.15,
            "pred {pred} expected {expected}"
        );
    }

    #[test]
    fn multi_step_decays_to_mean() {
        // A stationary AR forecast converges to the window mean.
        let mut rng = Rng::seed_from_u64(2);
        let mut xs = vec![5.0];
        for _ in 0..1_000 {
            let prev = *xs.last().expect("non-empty");
            xs.push(5.0 + 0.5 * (prev - 5.0) + 0.2 * rng.normal());
        }
        let mut f = ArForecaster::paper();
        let pred = f.forecast(&xs, 50);
        let far = pred[49];
        assert!((far - 5.0).abs() < 0.5, "far prediction {far}");
    }

    #[test]
    fn never_negative() {
        let mut rng = Rng::seed_from_u64(3);
        let xs: Vec<f64> =
            (0..200).map(|_| rng.normal().max(0.0)).collect();
        let mut f = ArForecaster::paper();
        for p in f.forecast(&xs, 30) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn short_history_is_graceful() {
        let mut f = ArForecaster::paper();
        assert_eq!(f.forecast(&[], 3), vec![0.0; 3]);
        let pred = f.forecast(&[2.0], 2);
        assert_eq!(pred, vec![2.0, 2.0]);
    }
}

//! Exponential smoothing forecasters.
//!
//! For *dense* blocks without discernible structure (§4.3.2), FeMux falls
//! back to trend followers: Simple Exponential Smoothing (SES) tracks a
//! moving level, and Holt's double exponential smoothing adds a trend
//! term. Both select their smoothing parameters dynamically by minimizing
//! one-step-ahead squared error on the window (§4.3.3 "dynamic parameter
//! selection").

use crate::Forecaster;

/// Candidate smoothing parameters for the dynamic grid search.
const GRID: [f64; 9] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.85, 0.95];

/// Runs SES over the series and returns (final level, SSE of one-step
/// errors).
fn ses_run(history: &[f64], alpha: f64) -> (f64, f64) {
    let mut level = history[0];
    let mut sse = 0.0;
    for &x in &history[1..] {
        let err = x - level;
        sse += err * err;
        level += alpha * err;
    }
    (level, sse)
}

/// Simple Exponential Smoothing with grid-searched `alpha`.
#[derive(Debug, Clone, Default)]
pub struct SesForecaster;

impl Forecaster for SesForecaster {
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        if history.len() == 1 {
            return vec![history[0].max(0.0); horizon];
        }
        let (level, _) = GRID
            .iter()
            .map(|&a| ses_run(history, a))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1).expect("SSE values are finite")
            })
            .expect("grid is non-empty");
        let mut out = vec![level.max(0.0); horizon];
        crate::sanitize_forecast(&mut out);
        out
    }
}

/// Runs Holt smoothing and returns (level, trend, SSE).
fn holt_run(history: &[f64], alpha: f64, beta: f64) -> (f64, f64, f64) {
    let mut level = history[0];
    let mut trend = history[1] - history[0];
    let mut sse = 0.0;
    for &x in &history[1..] {
        let pred = level + trend;
        let err = x - pred;
        sse += err * err;
        let new_level = alpha * x + (1.0 - alpha) * (level + trend);
        trend = beta * (new_level - level) + (1.0 - beta) * trend;
        level = new_level;
    }
    (level, trend, sse)
}

/// Holt's linear (double exponential) smoothing with grid-searched
/// `alpha` and `beta`.
#[derive(Debug, Clone, Default)]
pub struct HoltForecaster;

impl Forecaster for HoltForecaster {
    fn name(&self) -> &'static str {
        "holt"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        if history.len() < 3 {
            return vec![history[history.len() - 1].max(0.0); horizon];
        }
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for &alpha in &GRID {
            for &beta in &GRID[..6] {
                let (level, trend, sse) = holt_run(history, alpha, beta);
                if sse < best.0 {
                    best = (sse, level, trend);
                }
            }
        }
        let (_, level, trend) = best;
        let mut out: Vec<f64> = (1..=horizon)
            .map(|h| (level + trend * h as f64).max(0.0))
            .collect();
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::rng::Rng;

    #[test]
    fn ses_tracks_level_shift() {
        // Level jumps from 1 to 5 halfway; SES should forecast near 5.
        let mut history = vec![1.0; 60];
        history.extend(vec![5.0; 60]);
        let mut f = SesForecaster;
        let pred = f.forecast(&history, 3);
        for p in pred {
            assert!((p - 5.0).abs() < 0.2, "prediction {p}");
        }
    }

    #[test]
    fn ses_constant_is_exact() {
        let mut f = SesForecaster;
        assert_eq!(f.forecast(&[2.0; 50], 2), vec![2.0, 2.0]);
    }

    #[test]
    fn holt_extrapolates_trend() {
        // y = 0.5 t: Holt must continue the ramp, SES cannot.
        let history: Vec<f64> = (0..100).map(|t| 0.5 * t as f64).collect();
        let mut holt = HoltForecaster;
        let mut ses = SesForecaster;
        let hp = holt.forecast(&history, 10);
        let sp = ses.forecast(&history, 10);
        let truth_10 = 0.5 * 109.0;
        assert!((hp[9] - truth_10).abs() < 1.0, "holt {}", hp[9]);
        assert!(sp[9] < hp[9], "ses {} should lag holt {}", sp[9], hp[9]);
    }

    #[test]
    fn holt_handles_noise() {
        let mut rng = Rng::seed_from_u64(1);
        let history: Vec<f64> = (0..120)
            .map(|t| 10.0 + 0.1 * t as f64 + rng.normal())
            .collect();
        let mut holt = HoltForecaster;
        let pred = holt.forecast(&history, 5);
        let truth = 10.0 + 0.1 * 124.0;
        assert!((pred[4] - truth).abs() < 2.0, "pred {}", pred[4]);
    }

    #[test]
    fn never_negative_even_with_downtrend() {
        let history: Vec<f64> =
            (0..60).map(|t| (30.0 - t as f64).max(0.0)).collect();
        let mut holt = HoltForecaster;
        for p in holt.forecast(&history, 60) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let mut ses = SesForecaster;
        let mut holt = HoltForecaster;
        assert_eq!(ses.forecast(&[], 2), vec![0.0, 0.0]);
        assert_eq!(holt.forecast(&[], 2), vec![0.0, 0.0]);
        assert_eq!(ses.forecast(&[7.0], 2), vec![7.0, 7.0]);
        assert_eq!(holt.forecast(&[7.0, 8.0], 1), vec![8.0]);
    }
}

//! Seasonal-naive forecaster.
//!
//! Predicts each step from the value one season earlier, with automatic
//! season detection via the strongest spectral peak. Not part of the
//! paper's FeMux set — it exemplifies the "providers can use their
//! preferred set of forecasters" extension point (§4.3.3) and serves as
//! a strong reference on strictly periodic traffic.

use femux_stats::fft::power_spectrum;

use crate::Forecaster;

/// Seasonal-naive with spectral season detection.
#[derive(Debug, Clone)]
pub struct SeasonalNaiveForecaster {
    /// Fixed season length in steps; `None` detects it per window.
    pub period: Option<usize>,
    /// Shortest admissible season when detecting (avoids locking onto
    /// noise at tiny lags).
    pub min_period: usize,
}

impl SeasonalNaiveForecaster {
    /// Creates a detector-driven seasonal-naive forecaster.
    pub fn auto() -> Self {
        SeasonalNaiveForecaster {
            period: None,
            min_period: 4,
        }
    }

    /// Creates a fixed-period seasonal-naive forecaster.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_period(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaiveForecaster {
            period: Some(period),
            min_period: period,
        }
    }

    /// Detects the dominant season of a window from its spectrum.
    /// Returns `None` when the signal has no usable periodic structure.
    pub fn detect_period(&self, history: &[f64]) -> Option<usize> {
        let n = history.len();
        if n < 2 * self.min_period {
            return None;
        }
        let spectrum = power_spectrum(history);
        let total: f64 = spectrum.iter().sum();
        if total <= 1e-12 {
            return None;
        }
        // Strongest bin whose implied period is admissible.
        let mut best: Option<(usize, f64)> = None;
        for (i, &p) in spectrum.iter().enumerate() {
            let bin = i + 1;
            let period = n / bin;
            if period < self.min_period || period > n / 2 {
                continue;
            }
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((period, p));
            }
        }
        // Require the peak to carry a meaningful share of the variance.
        best.filter(|(_, p)| *p > 0.1 * total).map(|(t, _)| t)
    }
}

impl Forecaster for SeasonalNaiveForecaster {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        let period = self
            .period
            .or_else(|| self.detect_period(history));
        let Some(period) = period else {
            // No season: persist the last value.
            let last = history[history.len() - 1].max(0.0);
            return vec![last; horizon];
        };
        let mut out: Vec<f64> = (0..horizon)
            .map(|h| {
                // Step `len + h` echoes step `len + h - k*period` for the
                // smallest k that lands inside the window.
                let mut idx = history.len() + h;
                while idx >= history.len() {
                    if idx < period {
                        return history[history.len() - 1].max(0.0);
                    }
                    idx -= period;
                }
                history[idx].max(0.0)
            })
            .collect();
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| if (t / (period / 2)).is_multiple_of(2) { 4.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn fixed_period_echoes_history() {
        let mut f = SeasonalNaiveForecaster::with_period(4);
        let history = vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(f.forecast(&history, 4), vec![1.0, 2.0, 3.0, 4.0]);
        // Horizon past one season wraps to the same season again.
        assert_eq!(f.forecast(&history, 6)[4..], [1.0, 2.0]);
    }

    #[test]
    fn detects_square_wave_period() {
        let f = SeasonalNaiveForecaster::auto();
        let history = square_wave(240, 24);
        let detected = f.detect_period(&history).expect("periodic");
        assert_eq!(detected, 24);
    }

    #[test]
    fn auto_forecasts_periodic_signal() {
        let mut f = SeasonalNaiveForecaster::auto();
        let history = square_wave(240, 24);
        let pred = f.forecast(&history, 24);
        let truth = square_wave(264, 24);
        for (h, p) in pred.iter().enumerate() {
            assert_eq!(*p, truth[240 + h], "step {h}");
        }
    }

    #[test]
    fn aperiodic_signal_falls_back_to_naive() {
        // White noise has no dominant admissible period. (A linear ramp,
        // by contrast, legitimately registers as a sawtooth under the
        // DFT's periodic extension.)
        let mut rng = femux_stats::rng::Rng::seed_from_u64(3);
        let noise: Vec<f64> =
            (0..200).map(|_| rng.normal().abs()).collect();
        let f = SeasonalNaiveForecaster::auto();
        assert!(f.detect_period(&noise).is_none());
        let mut f = SeasonalNaiveForecaster::auto();
        let last = noise[noise.len() - 1];
        assert_eq!(f.forecast(&noise, 2), vec![last, last]);
    }

    #[test]
    fn degenerate_inputs() {
        let mut f = SeasonalNaiveForecaster::auto();
        assert_eq!(f.forecast(&[], 3), vec![0.0; 3]);
        assert_eq!(f.forecast(&[5.0], 0), Vec::<f64>::new());
        let constant = vec![2.0; 50];
        // Constant series: no spectrum, persist.
        assert_eq!(f.forecast(&constant, 2), vec![2.0, 2.0]);
    }
}

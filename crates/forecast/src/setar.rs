//! Self-Excitation Threshold Autoregressive (SETAR) forecaster.
//!
//! SETAR handles *piece-wise linear, non-stationary* traffic (§4.3.2 via
//! Tong's threshold models): the series follows different AR dynamics
//! depending on which side of one or two thresholds the delayed value
//! `x_{t-d}` falls. FeMux configures 10 lags and up to two thresholds
//! (§4.3.3). Thresholds are grid-searched over quantiles of the window to
//! minimize in-sample squared error; each regime gets its own OLS fit.

use femux_stats::matrix::{ols, Matrix};

use crate::Forecaster;

/// A SETAR(k; p) forecaster with up to two thresholds (three regimes).
#[derive(Debug, Clone)]
pub struct SetarForecaster {
    order: usize,
    max_thresholds: usize,
    delay: usize,
}

/// A fitted regime: intercept plus AR coefficients.
#[derive(Debug, Clone)]
struct Regime {
    beta: Vec<f64>,
}

impl Regime {
    fn predict(&self, lags: &[f64]) -> f64 {
        self.beta[0]
            + lags
                .iter()
                .zip(&self.beta[1..])
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }
}

/// A fitted SETAR model: sorted thresholds and one regime per segment.
#[derive(Debug, Clone)]
struct Fitted {
    thresholds: Vec<f64>,
    regimes: Vec<Regime>,
    order: usize,
    delay: usize,
}

impl Fitted {
    fn regime_index(&self, trigger: f64) -> usize {
        self.thresholds.iter().filter(|t| trigger > **t).count()
    }

    /// Predicts the next value from the trailing `order` values
    /// (`recent[len-1]` is the most recent observation).
    fn predict_next(&self, recent: &[f64]) -> f64 {
        let n = recent.len();
        let trigger = recent[n - self.delay];
        let regime = &self.regimes[self.regime_index(trigger)];
        let lags: Vec<f64> =
            (0..self.order).map(|i| recent[n - 1 - i]).collect();
        regime.predict(&lags)
    }
}

impl SetarForecaster {
    /// Creates a SETAR forecaster.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`, `delay == 0`, or `max_thresholds > 2`.
    pub fn new(order: usize, max_thresholds: usize, delay: usize) -> Self {
        assert!(order > 0 && delay > 0, "order and delay must be positive");
        assert!(max_thresholds <= 2, "at most two thresholds supported");
        SetarForecaster {
            order,
            max_thresholds,
            delay,
        }
    }

    /// The paper's configuration: 10 lags, up to two thresholds.
    pub fn paper() -> Self {
        SetarForecaster::new(10, 2, 1)
    }

    /// Fits regimes for a fixed threshold vector; returns the model and
    /// its in-sample SSE, or `None` when a regime has too few points.
    fn fit_with_thresholds(
        &self,
        history: &[f64],
        thresholds: &[f64],
    ) -> Option<(Fitted, f64)> {
        let p = self.order;
        let d = self.delay;
        let start = p.max(d);
        let n_rows = history.len().saturating_sub(start);
        let n_regimes = thresholds.len() + 1;
        if n_rows < (p + 2) * n_regimes {
            return None;
        }
        // Partition sample rows by regime.
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_regimes];
        for t in start..history.len() {
            let trigger = history[t - d];
            let idx =
                thresholds.iter().filter(|th| trigger > **th).count();
            rows[idx].push(t);
        }
        let mut regimes = Vec::with_capacity(n_regimes);
        for regime_rows in &rows {
            if regime_rows.len() < p + 2 {
                return None;
            }
            let mut design = Matrix::zeros(regime_rows.len(), p + 1);
            let mut target = Vec::with_capacity(regime_rows.len());
            for (r, &t) in regime_rows.iter().enumerate() {
                design[(r, 0)] = 1.0;
                for i in 0..p {
                    design[(r, 1 + i)] = history[t - 1 - i];
                }
                target.push(history[t]);
            }
            let beta = ols(&design, &target)?;
            regimes.push(Regime { beta });
        }
        let fitted = Fitted {
            thresholds: thresholds.to_vec(),
            regimes,
            order: p,
            delay: d,
        };
        // In-sample SSE.
        let mut sse = 0.0;
        for t in start..history.len() {
            let pred = fitted.predict_next(&history[..t]);
            let err = history[t] - pred;
            sse += err * err;
        }
        Some((fitted, sse))
    }

    fn fit(&self, history: &[f64]) -> Option<Fitted> {
        // Candidate thresholds: interior quantiles of the window.
        let mut sorted = history.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b).expect("values must not be NaN")
        });
        let candidates: Vec<f64> = (1..=7)
            .map(|q| {
                femux_stats::desc::quantile_sorted(&sorted, q as f64 / 8.0)
            })
            .collect();
        let mut best: Option<(Fitted, f64)> =
            self.fit_with_thresholds(history, &[]);
        if self.max_thresholds >= 1 {
            for &c in &candidates {
                if let Some((m, sse)) =
                    self.fit_with_thresholds(history, &[c])
                {
                    if best.as_ref().is_none_or(|(_, b)| sse < *b) {
                        best = Some((m, sse));
                    }
                }
            }
        }
        if self.max_thresholds >= 2 {
            for i in 0..candidates.len() {
                for j in (i + 2)..candidates.len() {
                    let pair = [candidates[i], candidates[j]];
                    if pair[0] >= pair[1] {
                        continue;
                    }
                    if let Some((m, sse)) =
                        self.fit_with_thresholds(history, &pair)
                    {
                        if best.as_ref().is_none_or(|(_, b)| sse < *b) {
                            best = Some((m, sse));
                        }
                    }
                }
            }
        }
        best.map(|(m, _)| m)
    }
}

impl Forecaster for SetarForecaster {
    fn name(&self) -> &'static str {
        "setar"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return vec![0.0; horizon];
        }
        let Some(model) = self.fit(history) else {
            let last = history[history.len() - 1];
            return vec![last.max(0.0); horizon];
        };
        // Iterating an (unconstrained) fitted model can diverge on
        // multi-step horizons; cap predictions at a multiple of the
        // window's peak — concurrency cannot explode within a horizon.
        let cap = 10.0
            * (1.0 + history.iter().fold(0.0f64, |a, &b| a.max(b)));
        let mut series = history.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let pred = model.predict_next(&series).clamp(0.0, cap);
            series.push(pred);
            out.push(pred);
        }
        crate::sanitize_forecast(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::rng::Rng;

    /// Generates a two-regime threshold process.
    fn setar_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = vec![1.0];
        for _ in 0..n {
            let prev = *xs.last().expect("non-empty");
            let next = if prev > 2.0 {
                0.5 * prev + 0.05 * rng.normal()
            } else {
                1.0 + 0.9 * prev + 0.05 * rng.normal()
            };
            xs.push(next.max(0.0));
        }
        xs
    }

    #[test]
    fn beats_plain_ar_on_threshold_process() {
        let xs = setar_series(600, 1);
        let (train, test) = xs.split_at(500);
        let mut setar = SetarForecaster::new(3, 1, 1);
        let mut ar = crate::ar::ArForecaster::new(3);
        let mut window = train.to_vec();
        let mut setar_err = 0.0;
        let mut ar_err = 0.0;
        for &truth in test {
            let s = setar.forecast(&window, 1)[0];
            let a = ar.forecast(&window, 1)[0];
            setar_err += (s - truth) * (s - truth);
            ar_err += (a - truth) * (a - truth);
            window.push(truth);
        }
        assert!(
            setar_err < ar_err,
            "setar {setar_err} vs ar {ar_err}"
        );
    }

    #[test]
    fn linear_series_falls_back_to_single_regime_quality() {
        // On a plain AR(1) process SETAR should not be much worse than
        // its own zero-threshold fit (sanity: no catastrophic overfit).
        let mut rng = Rng::seed_from_u64(2);
        let mut xs = vec![0.0];
        for _ in 0..400 {
            let prev = *xs.last().expect("non-empty");
            xs.push(2.0 + 0.6 * (prev - 2.0) + 0.1 * rng.normal());
        }
        let mut setar = SetarForecaster::paper();
        let pred = setar.forecast(&xs, 10);
        for p in &pred {
            assert!((p - 2.0).abs() < 1.0, "prediction {p} far from mean");
        }
    }

    #[test]
    fn short_history_is_graceful() {
        let mut f = SetarForecaster::paper();
        assert_eq!(f.forecast(&[], 2), vec![0.0, 0.0]);
        let pred = f.forecast(&[1.0, 2.0, 3.0], 2);
        assert_eq!(pred, vec![3.0, 3.0]);
    }

    #[test]
    fn multi_step_never_diverges() {
        // Regression: iterated SETAR predictions on a near-unit-root
        // window must stay bounded by the clamp.
        let mut xs: Vec<f64> = (0..150)
            .map(|t| 5.0 + 0.049 * t as f64)
            .collect();
        xs[149] = 20.0; // a spike to excite the upper regime
        let mut f = SetarForecaster::paper();
        let cap = 10.0 * (1.0 + 20.0);
        for p in f.forecast(&xs, 120) {
            assert!(p <= cap + 1e-9, "prediction {p} exceeds cap {cap}");
        }
    }

    #[test]
    fn never_negative() {
        let xs = setar_series(300, 3);
        let mut f = SetarForecaster::paper();
        for p in f.forecast(&xs, 20) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn regime_index_partitions() {
        let fitted = Fitted {
            thresholds: vec![1.0, 3.0],
            regimes: vec![
                Regime { beta: vec![0.0, 0.0] },
                Regime { beta: vec![0.0, 0.0] },
                Regime { beta: vec![0.0, 0.0] },
            ],
            order: 1,
            delay: 1,
        };
        assert_eq!(fitted.regime_index(0.5), 0);
        assert_eq!(fitted.regime_index(2.0), 1);
        assert_eq!(fitted.regime_index(5.0), 2);
    }
}

//! Block labelling: per-(block, forecaster) cost evaluation.
//!
//! The offline pipeline "simulates forecasts" (§4.3.3) for every training
//! block under every candidate forecaster and scores each with the
//! deployment's RUM. The capacity model mirrors the paper artifact's
//! result generation: per step, the policy provisions `ceil(pred /
//! per-pod concurrency)` pods; shortfalls trigger reactive pod cold
//! starts (0.808 s each by default), and idle capacity accrues wasted
//! GB-seconds.

use femux_forecast::ForecasterKind;
use femux_rum::CostRecord;

/// Static per-app parameters needed to turn forecast errors into costs.
#[derive(Debug, Clone, Copy)]
pub struct AppParams {
    /// Memory per pod in GB.
    pub mem_gb: f64,
    /// Per-pod concurrency limit.
    pub pod_concurrency: f64,
    /// Mean execution time in seconds (for exec-aware RUMs).
    pub exec_secs: f64,
    /// Step length in seconds (60 for per-minute series).
    pub step_secs: f64,
    /// Cold-start duration charged per reactive pod start, seconds.
    pub cold_start_secs: f64,
}

impl AppParams {
    fn pods_for(&self, concurrency: f64) -> f64 {
        if concurrency <= 0.0 {
            0.0
        } else {
            (concurrency / self.pod_concurrency).ceil()
        }
    }
}

/// Converts aligned (forecast, actual) concurrency series into a cost
/// record under the capacity model.
///
/// Reactive pods created by a shortfall *persist while still needed*
/// (mirroring the simulator's no-mid-execution-preemption rule), so a
/// shortfall sustained across several steps is charged once, not per
/// step — this keeps fine-grained and coarse-grained scaling
/// comparable.
pub fn capacity_costs(
    forecast: &[f64],
    actual: &[f64],
    p: &AppParams,
) -> CostRecord {
    assert_eq!(forecast.len(), actual.len(), "length mismatch");
    let mut costs = CostRecord::default();
    let mut reactive_alive = 0.0f64;
    for (&pred, &act) in forecast.iter().zip(actual) {
        let provisioned = p.pods_for(pred);
        let needed = p.pods_for(act);
        // New reactive pod starts cover the shortfall beyond what is
        // proactively provisioned plus the reactive pods still alive.
        let shortfall = (needed - provisioned).max(0.0);
        let new_reactive = (shortfall - reactive_alive).max(0.0);
        costs.cold_starts += new_reactive as u64;
        costs.cold_start_seconds += new_reactive * p.cold_start_secs;
        // Surviving reactive pods: still-needed portion of the shortfall.
        reactive_alive = shortfall.min(reactive_alive + new_reactive);
        let allocated = provisioned.max(needed);
        let busy = act / p.pod_concurrency;
        costs.allocated_gb_seconds +=
            allocated * p.mem_gb * p.step_secs;
        costs.wasted_gb_seconds +=
            (allocated - busy).max(0.0) * p.mem_gb * p.step_secs;
        costs.exec_seconds += act * p.step_secs; // concurrency-seconds
        costs.invocations += (act * p.step_secs
            / p.exec_secs.max(1e-3))
        .round() as u64;
    }
    costs
}

/// Runs one forecaster over a series with a refit stride: every `stride`
/// steps the forecaster refits on the trailing `history` window and
/// predicts the next `stride` steps. Returns the aligned forecast for
/// steps `history..len`.
pub fn strided_forecast(
    kind: ForecasterKind,
    series: &[f64],
    history: usize,
    stride: usize,
) -> Vec<f64> {
    assert!(stride > 0, "stride must be positive");
    let mut forecaster = kind.build();
    let mut out = Vec::with_capacity(series.len().saturating_sub(history));
    let mut t = history;
    while t < series.len() {
        let horizon = stride.min(series.len() - t);
        let start = t.saturating_sub(history);
        let pred = forecaster.forecast(&series[start..t], horizon);
        out.extend_from_slice(&pred);
        t += horizon;
    }
    out
}

/// Labels every block of one application: returns, for each block, the
/// cost of serving it with each forecaster.
///
/// `series` is the app's full per-step concurrency; blocks partition
/// `series[history..]` — the first `history` steps only seed the
/// forecasters.
pub fn label_app_blocks(
    series: &[f64],
    block_len: usize,
    history: usize,
    stride: usize,
    kinds: &[ForecasterKind],
    p: &AppParams,
) -> Vec<Vec<CostRecord>> {
    if series.len() < history + block_len {
        return Vec::new();
    }
    let n_blocks = (series.len() - history) / block_len;
    let actual = &series[history..history + n_blocks * block_len];
    let mut per_block: Vec<Vec<CostRecord>> =
        vec![Vec::with_capacity(kinds.len()); n_blocks];
    for &kind in kinds {
        let forecast = strided_forecast(kind, series, history, stride);
        for (b, row) in per_block.iter_mut().enumerate() {
            let lo = b * block_len;
            let hi = lo + block_len;
            row.push(capacity_costs(
                &forecast[lo..hi],
                &actual[lo..hi],
                p,
            ));
        }
    }
    per_block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams {
            mem_gb: 1.0,
            pod_concurrency: 1.0,
            exec_secs: 1.0,
            step_secs: 60.0,
            cold_start_secs: 0.808,
        }
    }

    #[test]
    fn perfect_forecast_has_no_cold_starts() {
        let actual = vec![2.0, 3.0, 1.0, 0.0];
        let costs = capacity_costs(&actual, &actual, &params());
        assert_eq!(costs.cold_starts, 0);
        assert_eq!(costs.cold_start_seconds, 0.0);
        // Waste comes only from ceil() granularity (zero here: integers).
        assert!(costs.wasted_gb_seconds < 1e-9);
    }

    #[test]
    fn underprediction_costs_cold_starts() {
        let pred = vec![0.0, 0.0];
        let actual = vec![3.0, 1.0];
        let costs = capacity_costs(&pred, &actual, &params());
        // Three pods start cold in step one; they persist into step two
        // (still needed), so no new cold starts there.
        assert_eq!(costs.cold_starts, 3);
        assert!((costs.cold_start_seconds - 3.0 * 0.808).abs() < 1e-9);
    }

    #[test]
    fn reactive_pods_die_once_covered() {
        // Shortfall, then the policy catches up, then shortfall again:
        // the second shortfall is a fresh cold start.
        let pred = vec![0.0, 5.0, 0.0];
        let actual = vec![2.0, 2.0, 2.0];
        let costs = capacity_costs(&pred, &actual, &params());
        assert_eq!(costs.cold_starts, 4);
    }

    #[test]
    fn overprediction_costs_waste() {
        let pred = vec![5.0, 5.0];
        let actual = vec![1.0, 1.0];
        let costs = capacity_costs(&pred, &actual, &params());
        assert_eq!(costs.cold_starts, 0);
        // 4 idle pods * 60 s * 1 GB per step.
        assert!((costs.wasted_gb_seconds - 2.0 * 4.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn pod_concurrency_divides_demand() {
        let p = AppParams {
            pod_concurrency: 100.0,
            ..params()
        };
        let pred = vec![150.0];
        let actual = vec![150.0];
        let costs = capacity_costs(&pred, &actual, &p);
        // 2 pods allocated, busy 1.5 pods: waste 0.5 pod-steps.
        assert!((costs.allocated_gb_seconds - 2.0 * 60.0).abs() < 1e-9);
        assert!((costs.wasted_gb_seconds - 0.5 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn strided_forecast_aligns() {
        // A naive forecaster with stride s repeats the last value for s
        // steps.
        let series: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let pred = strided_forecast(
            ForecasterKind::Naive,
            &series,
            10,
            5,
        );
        assert_eq!(pred.len(), 20);
        // First chunk: last value at t=10 is series[9] = 9.
        assert_eq!(&pred[..5], &[9.0; 5]);
        assert_eq!(&pred[5..10], &[14.0; 5]);
    }

    #[test]
    fn label_app_blocks_shapes() {
        let series: Vec<f64> =
            (0..500).map(|t| (t % 7) as f64).collect();
        let kinds = [ForecasterKind::Naive, ForecasterKind::Ses];
        let labels =
            label_app_blocks(&series, 100, 50, 10, &kinds, &params());
        assert_eq!(labels.len(), 4); // (500-50)/100
        assert!(labels.iter().all(|row| row.len() == 2));
        for row in &labels {
            for costs in row {
                costs.check().expect("consistent costs");
            }
        }
    }

    #[test]
    fn short_series_yields_no_blocks() {
        let labels = label_app_blocks(
            &[1.0; 50],
            100,
            50,
            10,
            &[ForecasterKind::Naive],
            &params(),
        );
        assert!(labels.is_empty());
    }

    #[test]
    fn good_forecaster_gets_lower_cost_on_its_regime() {
        // Strong periodic signal: FFT should beat Naive.
        let series: Vec<f64> = (0..600)
            .map(|t| {
                5.0 + 4.0
                    * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
            })
            .collect();
        let kinds = [ForecasterKind::Fft, ForecasterKind::Naive];
        let labels =
            label_app_blocks(&series, 200, 120, 4, &kinds, &params());
        let rum = femux_rum::RumSpec::default_paper();
        let fft: f64 =
            labels.iter().map(|row| rum.evaluate(&row[0])).sum();
        let naive: f64 =
            labels.iter().map(|row| rum.evaluate(&row[1])).sum();
        assert!(fft < naive, "fft {fft} vs naive {naive}");
    }
}

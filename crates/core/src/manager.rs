//! Online per-application lifetime management (§4.3.5).
//!
//! Each application gets an [`AppManager`]: it ingests one average-
//! concurrency sample per step, forecasts the next step with its current
//! forecaster, and — whenever a new block completes — asynchronously
//! re-classifies and switches forecasters. [`FemuxPolicy`] adapts the
//! manager to the simulator's [`ScalingPolicy`] interface.
//!
//! # Graceful degradation
//!
//! A production forecaster can misbehave: return `NaN`/`∞` or panic
//! outright (the `femux-fault` crate injects exactly these). The manager
//! never lets that reach the autoscaler. Every forecast runs under a
//! panic guard; a panicking or non-finite forecast demotes the app to
//! the always-sane moving-average fallback for the remainder of the
//! block, plus an exponentially growing number of penalty blocks
//! (`2^strikes - 1`, capped) for repeat offenders. A clean block on the
//! real forecaster resets the strike count. Demotions, fallback blocks,
//! and re-promotions are recorded in [`AppManager::history_of_kinds`]
//! and the `degrade.*` telemetry counters.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use femux_fault::{FaultStats, ForecastFate, ForecastFaults};
use femux_features::Block;
use femux_forecast::{Forecaster, ForecasterKind};
use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

use crate::degrade::{DegradeLadder, LadderDecision};
use crate::model::FemuxModel;

/// Online state for one application.
pub struct AppManager {
    model: Arc<FemuxModel>,
    series: Vec<f64>,
    exec_secs: f64,
    current_kind: ForecasterKind,
    forecaster: Box<dyn Forecaster>,
    /// Every forecaster the app has used, in order (switch history —
    /// Fig. 17 reports switching statistics). Degradations to the
    /// moving-average fallback and the fallback blocks that follow
    /// appear here too.
    pub history_of_kinds: Vec<ForecasterKind>,
    next_block_end: usize,
    /// Injected forecaster-fault stream, if this manager runs under a
    /// fault plan.
    faults: Option<ForecastFaults>,
    /// The moving-average fallback while degraded; `None` when healthy.
    fallback: Option<Box<dyn Forecaster>>,
    /// Demotion/backoff/re-promotion control state (shared with the
    /// online serving harness, which drives its own copy).
    ladder: DegradeLadder,
}

impl AppManager {
    /// Creates a manager starting on the model's default forecaster.
    pub fn new(model: Arc<FemuxModel>, exec_secs: f64) -> Self {
        let kind = model.default_forecaster;
        AppManager {
            next_block_end: model.cfg.block_len,
            forecaster: kind.build(),
            current_kind: kind,
            history_of_kinds: vec![kind],
            series: Vec::new(),
            exec_secs,
            model,
            faults: None,
            fallback: None,
            ladder: DegradeLadder::new(),
        }
    }

    /// Creates a manager whose forecasts are corrupted by the given
    /// injected-fault stream (see `femux-fault`). Also installs the
    /// process-wide hook that keeps injected panics off stderr.
    pub fn with_faults(
        model: Arc<FemuxModel>,
        exec_secs: f64,
        faults: ForecastFaults,
    ) -> Self {
        femux_fault::silence_injected_panics();
        let mut mgr = AppManager::new(model, exec_secs);
        mgr.faults = Some(faults);
        mgr
    }

    /// Returns the forecaster currently in use (the moving-average
    /// fallback while degraded).
    pub fn current(&self) -> ForecasterKind {
        if self.fallback.is_some() {
            ForecasterKind::MovingAverage
        } else {
            self.current_kind
        }
    }

    /// Whether the manager is currently demoted to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.fallback.is_some()
    }

    /// Injected forecaster faults fired so far (all zero without a
    /// fault stream).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Number of forecaster switches so far.
    pub fn switches(&self) -> usize {
        self.history_of_kinds
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count()
    }

    /// Number of distinct forecasters used.
    pub fn distinct_forecasters(&self) -> usize {
        let mut kinds = self.history_of_kinds.clone();
        kinds.sort_unstable();
        kinds.dedup();
        kinds.len()
    }

    /// Ingests one step of observed average concurrency. When this
    /// completes a block, the block is classified and the forecaster for
    /// the next block selected (the paper does this asynchronously; the
    /// classification itself takes well under 10 ms).
    ///
    /// Non-finite samples (e.g. `NaN` from a lost concurrency report)
    /// are sanitized to zero so one bad report can never poison the
    /// history the forecasters and classifier read.
    pub fn observe(&mut self, value: f64) {
        let value = if value.is_finite() {
            value
        } else {
            femux_obs::counter_add("degrade.nonfinite_observations", 1);
            0.0
        };
        self.series.push(value.max(0.0));
        if self.series.len() >= self.next_block_end {
            let lo = self.next_block_end - self.model.cfg.block_len;
            let block = Block {
                app_index: 0,
                seq: 0,
                series: self.series[lo..self.next_block_end].to_vec(),
                exec_secs: self.exec_secs,
            };
            let kind = self.model.select(&block);
            femux_obs::counter_add("core.manager.blocks_classified", 1);
            femux_obs::counter_add(
                &format!("core.manager.selected.{}", kind.name()),
                1,
            );
            match self.ladder.block_boundary() {
                LadderDecision::Fallback => {
                    // Still serving out the backoff penalty: another
                    // full block on the fallback.
                    self.history_of_kinds
                        .push(ForecasterKind::MovingAverage);
                }
                LadderDecision::Repromote => {
                    // Penalty served: re-promote to whatever the
                    // classifier picked for the fresh block.
                    self.fallback = None;
                    if kind != self.current_kind {
                        femux_obs::counter_add("core.manager.switches", 1);
                    }
                    self.current_kind = kind;
                    self.forecaster = kind.build();
                    self.history_of_kinds.push(kind);
                }
                LadderDecision::Healthy { .. } => {
                    if kind != self.current_kind {
                        femux_obs::counter_add("core.manager.switches", 1);
                        self.current_kind = kind;
                        self.forecaster = kind.build();
                    }
                    self.history_of_kinds.push(kind);
                }
            }
            self.next_block_end += self.model.cfg.block_len;
        }
    }

    /// Forecasts the next `horizon` steps from the trailing history
    /// window.
    ///
    /// The real forecaster runs under a panic guard; a panic or any
    /// non-finite output demotes the app to the moving-average fallback
    /// (see the module docs) and the fallback serves this call. The
    /// returned values are always finite.
    pub fn forecast(&mut self, horizon: usize) -> Vec<f64> {
        femux_obs::counter_add("core.manager.forecasts", 1);
        let start =
            self.series.len().saturating_sub(self.model.cfg.history);
        if self.fallback.is_none() {
            let fate = match self.faults.as_mut() {
                Some(f) => f.fate(),
                None => ForecastFate::None,
            };
            let forecaster = &mut self.forecaster;
            let series = &self.series;
            let result = catch_unwind(AssertUnwindSafe(move || {
                let mut out = forecaster.forecast(&series[start..], horizon);
                match fate {
                    ForecastFate::None => {}
                    ForecastFate::Nan => {
                        out.iter_mut().for_each(|v| *v = f64::NAN)
                    }
                    ForecastFate::Inf => {
                        out.iter_mut().for_each(|v| *v = f64::INFINITY)
                    }
                    ForecastFate::Panic => femux_fault::inject_panic(),
                }
                out
            }));
            match result {
                Ok(out) if out.iter().all(|v| v.is_finite()) => {
                    return out;
                }
                Ok(_) => {
                    femux_obs::counter_add("degrade.forecast_nonfinite", 1);
                }
                Err(_) => {
                    femux_obs::counter_add("degrade.forecast_panics", 1);
                }
            }
            self.enter_fallback();
        }
        let fallback = self
            .fallback
            .as_mut()
            .expect("degraded path always has a fallback installed");
        fallback.forecast(&self.series[start..], horizon)
    }

    /// Whether this manager draws from an injected forecaster-fault
    /// stream. The draw-order contract (one fate per healthy forecast)
    /// forbids closed-form step skipping while a stream is installed.
    pub fn has_fault_stream(&self) -> bool {
        self.faults.is_some()
    }

    /// True when the forecast window is saturated and all-zero: every
    /// further zero observation leaves the window byte-identical, so
    /// consecutive forecasts are pure repeats of each other.
    pub fn idle_window_settled(&self) -> bool {
        let h = self.model.cfg.history;
        h > 0
            && self.series.len() >= h
            && self.series[self.series.len() - h..]
                .iter()
                .all(|&v| v == 0.0)
    }

    /// Steps until the next block boundary (always ≥ 1 between
    /// observations).
    pub fn steps_until_block(&self) -> usize {
        self.next_block_end.saturating_sub(self.series.len())
    }

    /// Advances `k` idle steps in closed form: exactly the state and
    /// telemetry that `k` `(observe(0.0), forecast(_))` pairs would
    /// produce when the window is settled
    /// ([`Self::idle_window_settled`]), no fault stream is installed,
    /// and no block boundary is crossed — the forecasts are pure
    /// repeats (forecasters only mutate in `train`, a `femux-forecast`
    /// contract), so only the series and the forecast counter move.
    pub fn skip_idle_steps(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        debug_assert!(self.faults.is_none());
        debug_assert!(self.idle_window_settled());
        debug_assert!(
            self.series.len() + k < self.next_block_end,
            "closed-form skip must not cross a block boundary"
        );
        self.series.resize(self.series.len() + k, 0.0);
        femux_obs::counter_add("core.manager.forecasts", k as u64);
    }

    /// Demotes the app to the moving-average fallback; the ladder
    /// charges the exponentially growing block penalty for repeat
    /// offenses.
    fn enter_fallback(&mut self) {
        self.ladder.record_fault();
        self.fallback = Some(ForecasterKind::MovingAverage.build());
        self.history_of_kinds.push(ForecasterKind::MovingAverage);
    }
}

/// A serializable snapshot of an [`AppManager`]'s state.
///
/// The Knative prototype persists forecasting-thread state in etcd so
/// FeMux pods can be rescheduled without losing application history
/// (§5.2); this is the state that gets persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerSnapshot {
    /// Observed per-step concurrency so far.
    pub series: Vec<f64>,
    /// Forecaster currently in use.
    pub current: ForecasterKind,
    /// Full switch history.
    pub history_of_kinds: Vec<ForecasterKind>,
    /// Next block boundary (in steps).
    pub next_block_end: usize,
    /// The app's mean execution time, seconds.
    pub exec_secs: f64,
}

impl AppManager {
    /// Captures the manager's state for persistence.
    pub fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot {
            series: self.series.clone(),
            current: self.current_kind,
            history_of_kinds: self.history_of_kinds.clone(),
            next_block_end: self.next_block_end,
            exec_secs: self.exec_secs,
        }
    }

    /// Rebuilds a manager from a snapshot (e.g. on another FeMux pod).
    ///
    /// Degradation state (fallback, strikes, penalty) is deliberately
    /// transient and not persisted: a rescheduled manager restarts
    /// healthy on the snapshot's forecaster and re-demotes only if the
    /// fault recurs.
    pub fn from_snapshot(
        model: Arc<FemuxModel>,
        snap: ManagerSnapshot,
    ) -> Self {
        AppManager {
            forecaster: snap.current.build(),
            current_kind: snap.current,
            history_of_kinds: snap.history_of_kinds,
            next_block_end: snap.next_block_end,
            series: snap.series,
            exec_secs: snap.exec_secs,
            model,
            faults: None,
            fallback: None,
            ladder: DegradeLadder::new(),
        }
    }
}

/// FeMux as a simulator scaling policy: at each interval it ingests the
/// newest observation and provisions the forecasted concurrency.
///
/// The forecast is an *average* concurrency; as in the Knative
/// prototype, the autoscaler provisions it against a per-pod
/// concurrency target scaled by a utilization factor (Knative's
/// default 0.7), leaving headroom for within-interval peaks, and never
/// scales below what is currently in flight.
pub struct FemuxPolicy {
    manager: AppManager,
    /// Target per-pod utilization (0 < u <= 1; Knative default 0.7).
    pub utilization: f64,
}

impl FemuxPolicy {
    /// Creates the policy for one application.
    pub fn new(model: Arc<FemuxModel>, exec_secs: f64) -> Self {
        FemuxPolicy {
            manager: AppManager::new(model, exec_secs),
            utilization: 0.7,
        }
    }

    /// Creates the policy with an injected forecaster-fault stream (see
    /// [`AppManager::with_faults`]).
    pub fn with_faults(
        model: Arc<FemuxModel>,
        exec_secs: f64,
        faults: ForecastFaults,
    ) -> Self {
        FemuxPolicy {
            manager: AppManager::with_faults(model, exec_secs, faults),
            utilization: 0.7,
        }
    }

    /// Access to the underlying manager (switch statistics).
    pub fn manager(&self) -> &AppManager {
        &self.manager
    }
}

impl ScalingPolicy for FemuxPolicy {
    fn name(&self) -> String {
        "femux".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        // Ingest every interval completed since the last call (exactly
        // one per tick in the simulator).
        let seen = self.manager.series.len();
        for &v in &ctx.avg_concurrency[seen..] {
            self.manager.observe(v);
        }
        let pred = self.manager.forecast(1)[0];
        let target = (pred / self.utilization.clamp(0.05, 1.0))
            .max(ctx.inflight as f64);
        ctx.pods_for_concurrency(target)
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        // Take tick `i` with full per-tick semantics (ingest, forecast,
        // possibly demote). If that leaves the manager in the settled
        // all-zero fixed point, the following ticks are pure repeats up
        // to the next block boundary and advance in closed form. The
        // target never reads `current_pods`, so the run is safe under
        // scale-out rate limiting.
        let target = self.target_pods(&idle.ctx(i, current_pods));
        if self.manager.has_fault_stream()
            || !self.manager.idle_window_settled()
        {
            return IdleRun { target, ticks: 1 };
        }
        let extra = (max_ticks - 1).min(
            self.manager.steps_until_block().saturating_sub(1) as u64,
        );
        self.manager.skip_idle_steps(extra as usize);
        IdleRun {
            target,
            ticks: 1 + extra,
        }
    }

    fn fault_stats(&self) -> FaultStats {
        self.manager.fault_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FemuxConfig;
    use crate::model::{train, ClassifierKind, TrainApp};
    use femux_stats::rng::Rng;

    fn model() -> Arc<FemuxModel> {
        let cfg = FemuxConfig::for_tests();
        let mut rng = Rng::seed_from_u64(1);
        let apps: Vec<TrainApp> = (0..6)
            .map(|i| {
                let series: Vec<f64> = if i % 2 == 0 {
                    (0..600)
                        .map(|t| {
                            5.0 + 4.0
                                * (2.0 * std::f64::consts::PI * t as f64
                                    / 24.0)
                                    .sin()
                        })
                        .collect()
                } else {
                    (0..600).map(|_| (2.0 + rng.normal()).max(0.0)).collect()
                };
                TrainApp {
                    concurrency: series,
                    exec_secs: 0.5,
                    mem_gb: 0.5,
                    pod_concurrency: 1,
                }
            })
            .collect();
        Arc::new(train(&apps, &cfg, ClassifierKind::KMeans).expect("model"))
    }

    #[test]
    fn starts_on_default_and_reclassifies_at_block_boundary() {
        let model = model();
        let mut mgr = AppManager::new(model.clone(), 0.5);
        assert_eq!(mgr.current(), model.default_forecaster);
        // Feed a strongly periodic signal for one full block: the block
        // must be classified exactly once, and the resulting choice must
        // match what the model selects for that block directly.
        let series: Vec<f64> = (0..model.cfg.block_len)
            .map(|t| {
                5.0 + 4.0
                    * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
            })
            .collect();
        for &v in &series {
            mgr.observe(v);
        }
        assert_eq!(mgr.history_of_kinds.len(), 2);
        let expected = model.select(&femux_features::Block {
            app_index: 0,
            seq: 0,
            series,
            exec_secs: 0.5,
        });
        assert_eq!(mgr.current(), expected);
    }

    #[test]
    fn forecast_tracks_periodic_signal_after_switch() {
        let model = model();
        let mut mgr = AppManager::new(model.clone(), 0.5);
        let f = |t: usize| {
            5.0 + 4.0
                * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
        };
        let total = model.cfg.block_len + 60;
        for t in 0..total {
            mgr.observe(f(t));
        }
        let pred = mgr.forecast(1)[0];
        let truth = f(total);
        assert!(
            (pred - truth).abs() < 1.0,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn switch_statistics() {
        let model = model();
        let mgr = AppManager::new(model, 0.5);
        assert_eq!(mgr.switches(), 0);
        assert_eq!(mgr.distinct_forecasters(), 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_behaviour() {
        let model = model();
        let mut original = AppManager::new(model.clone(), 0.5);
        for t in 0..150 {
            original.observe((2.0 + (t as f64 * 0.3).sin()).max(0.0));
        }
        let snap = original.snapshot();
        let mut restored = AppManager::from_snapshot(model, snap.clone());
        assert_eq!(restored.current(), original.current());
        assert_eq!(restored.forecast(3), original.forecast(3));
        // Both continue identically.
        original.observe(1.5);
        restored.observe(1.5);
        assert_eq!(restored.snapshot(), original.snapshot());
    }

    #[test]
    fn nonfinite_observations_are_sanitized() {
        let model = model();
        let mut mgr = AppManager::new(model, 0.5);
        mgr.observe(f64::NAN);
        mgr.observe(f64::INFINITY);
        mgr.observe(f64::NEG_INFINITY);
        mgr.observe(-3.0);
        mgr.observe(2.5);
        assert_eq!(
            mgr.snapshot().series,
            vec![0.0, 0.0, 0.0, 0.0, 2.5],
            "bad samples become zero, good samples pass through"
        );
    }

    #[test]
    fn forecast_faults_demote_and_backoff_then_repromote() {
        let model = model();
        let block = model.cfg.block_len;
        // Rate 1.0: every forecast on the real forecaster is corrupted
        // (NaN, Inf, or panic, flavor drawn from the stream).
        let faults = femux_fault::FaultConfig::uniform(11, 1.0)
            .forecast_faults(femux_trace::AppId(3));
        let mut mgr = AppManager::with_faults(model, 0.5, faults);
        let feed = |mgr: &mut AppManager, n: usize| {
            for t in 0..n {
                mgr.observe((2.0 + (t as f64 * 0.3).sin()).max(0.0));
            }
        };
        feed(&mut mgr, block);
        assert!(!mgr.is_degraded());

        // First fault: demoted, zero penalty blocks (2^0 - 1).
        let out = mgr.forecast(3);
        assert!(out.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(mgr.is_degraded());
        assert_eq!(mgr.current(), ForecasterKind::MovingAverage);
        assert_eq!(mgr.fault_stats().forecast_faults, 1);
        // Further forecasts ride the fallback without drawing faults.
        let _ = mgr.forecast(3);
        assert_eq!(mgr.fault_stats().forecast_faults, 1);

        // Next block boundary: penalty served, re-promoted.
        feed(&mut mgr, block);
        assert!(!mgr.is_degraded());

        // Second fault without an intervening clean block: one full
        // penalty block (2^1 - 1) before re-promotion.
        let _ = mgr.forecast(3);
        assert!(mgr.is_degraded());
        assert_eq!(mgr.fault_stats().forecast_faults, 2);
        feed(&mut mgr, block);
        assert!(mgr.is_degraded(), "penalty block still being served");
        feed(&mut mgr, block);
        assert!(!mgr.is_degraded(), "re-promoted after the penalty");
        assert!(mgr
            .history_of_kinds
            .contains(&ForecasterKind::MovingAverage));
    }

    #[test]
    fn forecasts_stay_finite_under_sustained_faults() {
        let model = model();
        let block = model.cfg.block_len;
        let faults = femux_fault::FaultConfig::uniform(23, 1.0)
            .forecast_faults(femux_trace::AppId(8));
        let mut mgr = AppManager::with_faults(model, 0.5, faults);
        // Interleave observations and forecasts across several blocks;
        // whatever flavor fires (including panics), the caller only
        // ever sees finite, non-negative predictions.
        for t in 0..block * 4 {
            mgr.observe((3.0 + (t as f64 * 0.1).cos()).max(0.0));
            let out = mgr.forecast(2);
            assert_eq!(out.len(), 2);
            assert!(
                out.iter().all(|v| v.is_finite() && *v >= 0.0),
                "bad forecast escaped the guard: {out:?}"
            );
        }
        assert!(mgr.fault_stats().forecast_faults > 0);
    }

    #[test]
    fn policy_provisions_forecasted_capacity() {
        let model = model();
        let mut policy = FemuxPolicy::new(model, 0.5);
        let config = femux_trace::AppConfig {
            concurrency: 1,
            ..Default::default()
        };
        let history: Vec<f64> = vec![3.0; 10];
        let ctx = PolicyCtx {
            now_ms: 600_000,
            interval_ms: 60_000,
            avg_concurrency: &history,
            peak_concurrency: &history,
            arrivals: &history,
            config: &config,
            current_pods: 0,
            inflight: 0,
        };
        let target = policy.target_pods(&ctx);
        // Constant concurrency 3 with the 0.7 utilization headroom
        // provisions ceil(3 / 0.7) = 5 pods at most.
        assert!(
            (3..=5).contains(&target),
            "target {target} for constant load 3"
        );
    }
}

//! FeMux configuration.

use femux_classify::KMeansConfig;
use femux_features::FeatureKind;
use femux_forecast::ForecasterKind;
use femux_rum::RumSpec;

/// Configuration shared by FeMux's offline trainer and online manager.
#[derive(Debug, Clone)]
pub struct FemuxConfig {
    /// Block length in steps (paper: 504 minutes).
    pub block_len: usize,
    /// Forecast history window in steps (paper: 120 minutes).
    pub history: usize,
    /// Features fed to the classifier.
    pub features: Vec<FeatureKind>,
    /// Candidate forecasters to multiplex between.
    pub forecasters: Vec<ForecasterKind>,
    /// The RUM this deployment optimizes.
    pub rum: RumSpec,
    /// K-means settings for the block classifier.
    pub kmeans: KMeansConfig,
    /// Cold-start duration assumed when labelling blocks, seconds
    /// (paper default: 0.808).
    pub cold_start_secs: f64,
    /// Training-time refit stride in steps: during offline labelling a
    /// forecaster is refit every `label_stride` steps and predicts that
    /// many steps ahead (1 = refit every step, as deployed; larger
    /// values trade labelling fidelity for training speed).
    pub label_stride: usize,
}

impl Default for FemuxConfig {
    fn default() -> Self {
        FemuxConfig {
            block_len: 504,
            history: 120,
            features: FeatureKind::DEFAULT.to_vec(),
            forecasters: ForecasterKind::FEMUX_SET.to_vec(),
            rum: RumSpec::default_paper(),
            kmeans: KMeansConfig::default(),
            cold_start_secs: 0.808,
            label_stride: 10,
        }
    }
}

impl FemuxConfig {
    /// The paper's FeMux-CS variant (4x cold-start weight).
    pub fn cs_variant() -> Self {
        FemuxConfig {
            rum: RumSpec::femux_cs(),
            ..FemuxConfig::default()
        }
    }

    /// The paper's FeMux-Mem variant (4x memory weight).
    pub fn mem_variant() -> Self {
        FemuxConfig {
            rum: RumSpec::femux_mem(),
            ..FemuxConfig::default()
        }
    }

    /// The paper's FeMux-Exec variant: exec-time-aware RUM plus the
    /// execution-time feature (§5.1.3).
    pub fn exec_variant() -> Self {
        let mut features = FeatureKind::DEFAULT.to_vec();
        features.push(FeatureKind::ExecTime);
        FemuxConfig {
            rum: RumSpec::femux_exec(),
            features,
            ..FemuxConfig::default()
        }
    }

    /// A reduced configuration for unit tests: short blocks, few
    /// forecasters.
    pub fn for_tests() -> Self {
        FemuxConfig {
            block_len: 120,
            history: 60,
            label_stride: 15,
            kmeans: KMeansConfig {
                k: 3,
                restarts: 2,
                ..KMeansConfig::default()
            },
            forecasters: vec![
                ForecasterKind::Ar,
                ForecasterKind::Fft,
                ForecasterKind::Ses,
            ],
            ..FemuxConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = FemuxConfig::default();
        assert_eq!(cfg.block_len, 504);
        assert_eq!(cfg.history, 120);
        assert_eq!(cfg.forecasters.len(), 6);
        assert!((cfg.cold_start_secs - 0.808).abs() < 1e-12);
        assert_eq!(cfg.rum, RumSpec::default_paper());
    }

    #[test]
    fn exec_variant_adds_feature() {
        let cfg = FemuxConfig::exec_variant();
        assert!(cfg.features.contains(&FeatureKind::ExecTime));
        assert_eq!(cfg.rum, RumSpec::femux_exec());
    }
}

//! Forecaster degradation ladder (§4.3.5 resilience machinery).
//!
//! Extracted from [`crate::manager::AppManager`] so the online serving
//! harness can drive the *identical* demotion/backoff/re-promotion
//! state machine without owning an `AppManager`: the same strikes, the
//! same `2^strikes - 1` penalty schedule, and the same `degrade.*`
//! telemetry, so offline replay and online serving agree decision for
//! decision.
//!
//! The ladder tracks only the control state. The owner keeps whatever
//! concrete fallback forecaster it wants and calls:
//!
//! - [`DegradeLadder::record_fault`] when a forecast panics or returns
//!   non-finite output — the app is demoted and charged the penalty;
//! - [`DegradeLadder::block_boundary`] once per completed block — the
//!   returned [`LadderDecision`] says whether to serve another fallback
//!   block, re-promote to the classifier's pick, or continue healthy.

/// Cap on the degradation backoff exponent (penalty is `2^strikes - 1`
/// blocks, so the longest demotion is 63 blocks).
pub const MAX_STRIKE_EXPONENT: u32 = 6;

/// What the owner must do at a block boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderDecision {
    /// Healthy: adopt the classifier's pick for the next block. `clean`
    /// is true when the finished block saw no fault (strikes were
    /// forgiven).
    Healthy {
        /// Whether the finished block was fault-free.
        clean: bool,
    },
    /// Still serving the backoff penalty: another full block on the
    /// fallback forecaster.
    Fallback,
    /// Penalty served: re-promote to the classifier's pick.
    Repromote,
}

/// Degradation control state for one application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradeLadder {
    /// Consecutive degradations without an intervening clean block.
    strikes: u32,
    /// Full penalty blocks left before re-promotion is allowed.
    penalty_blocks_left: usize,
    /// Whether the current block saw a degradation (gates strike reset).
    faulted_this_block: bool,
    /// Whether the app is currently demoted to the fallback.
    degraded: bool,
}

impl DegradeLadder {
    /// A fresh, healthy ladder.
    pub fn new() -> Self {
        DegradeLadder::default()
    }

    /// Whether the app is currently demoted to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Current consecutive-strike count.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// Records a forecast fault: demotes the app and charges an
    /// exponentially growing block penalty for repeat offenses. Returns
    /// the penalty (in blocks) charged for this offense.
    pub fn record_fault(&mut self) -> usize {
        let penalty =
            (1usize << self.strikes.min(MAX_STRIKE_EXPONENT)) - 1;
        self.strikes = self.strikes.saturating_add(1);
        self.penalty_blocks_left = penalty;
        self.faulted_this_block = true;
        self.degraded = true;
        femux_obs::counter_add("degrade.fallbacks", 1);
        femux_obs::observe("degrade.penalty_blocks", penalty as u64);
        penalty
    }

    /// Advances the ladder across a block boundary and says what the
    /// owner must do for the next block.
    pub fn block_boundary(&mut self) -> LadderDecision {
        let decision = if self.degraded {
            if self.penalty_blocks_left > 0 {
                self.penalty_blocks_left -= 1;
                femux_obs::counter_add("degrade.fallback_blocks", 1);
                LadderDecision::Fallback
            } else {
                self.degraded = false;
                femux_obs::counter_add("degrade.repromotions", 1);
                LadderDecision::Repromote
            }
        } else {
            let clean = !self.faulted_this_block;
            if clean {
                // A clean block on the real forecaster forgives past
                // strikes.
                self.strikes = 0;
            }
            LadderDecision::Healthy { clean }
        };
        self.faulted_this_block = false;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_schedule_is_exponential_and_capped() {
        let mut ladder = DegradeLadder::new();
        // Consecutive offenses (no clean block between): 0, 1, 3, 7, …
        // capped at 2^6 - 1 = 63.
        let mut penalties = Vec::new();
        for _ in 0..9 {
            penalties.push(ladder.record_fault());
            // Serve the demotion out completely.
            while ladder.block_boundary() == LadderDecision::Fallback {}
        }
        assert_eq!(penalties, vec![0, 1, 3, 7, 15, 31, 63, 63, 63]);
    }

    #[test]
    fn clean_block_forgives_strikes() {
        let mut ladder = DegradeLadder::new();
        assert_eq!(ladder.record_fault(), 0);
        assert_eq!(ladder.block_boundary(), LadderDecision::Repromote);
        // The repromotion block finishes clean: strikes reset.
        assert_eq!(
            ladder.block_boundary(),
            LadderDecision::Healthy { clean: true }
        );
        assert_eq!(ladder.strikes(), 0);
        assert_eq!(ladder.record_fault(), 0, "first offense again");
    }

    #[test]
    fn faulted_block_reports_unclean_and_keeps_strikes() {
        let mut ladder = DegradeLadder::new();
        assert_eq!(ladder.record_fault(), 0);
        assert_eq!(ladder.block_boundary(), LadderDecision::Repromote);
        assert_eq!(ladder.record_fault(), 1, "second offense escalates");
        assert!(ladder.is_degraded());
        assert_eq!(ladder.block_boundary(), LadderDecision::Fallback);
        assert_eq!(ladder.block_boundary(), LadderDecision::Repromote);
        assert!(!ladder.is_degraded());
    }
}

//! FeMux: a forecaster-multiplexing serverless lifetime manager.
//!
//! FeMux (the paper's primary contribution, §4.3) periodically extracts
//! latent features from each application's traffic, classifies the
//! completed block with a model trained offline on fleet-level traces,
//! and switches the application to the forecaster best suited to its
//! current behaviour — optimizing a Representative Unified Metric (RUM)
//! end to end rather than a generic error metric.
//!
//! - [`config`]: the knobs (block length 504 min, 2 h history, the
//!   forecaster set, RUM weights).
//! - [`label`]: offline forecast simulation and the capacity-cost model
//!   that turns forecast errors into cold starts and wasted GB-seconds.
//! - [`model`]: the training pipeline (label → features → scale →
//!   k-means → per-cluster forecaster) plus supervised alternatives.
//! - [`manager`]: the online per-app manager and the simulator policy.
//!
//! # Examples
//!
//! ```
//! use femux::config::FemuxConfig;
//! use femux::model::{train, ClassifierKind, TrainApp};
//!
//! let apps: Vec<TrainApp> = (0..4)
//!     .map(|_| TrainApp {
//!         concurrency: (0..600)
//!             .map(|t| 2.0 + (t as f64 * 0.26).sin().max(-1.0))
//!             .collect(),
//!         exec_secs: 0.5,
//!         mem_gb: 0.5,
//!         pod_concurrency: 1,
//!     })
//!     .collect();
//! let cfg = FemuxConfig::for_tests();
//! let model = train(&apps, &cfg, ClassifierKind::KMeans).unwrap();
//! assert!(model.stats.n_blocks > 0);
//! ```

pub mod config;
pub mod degrade;
pub mod label;
pub mod manager;
pub mod model;
pub mod tiers;

pub use config::FemuxConfig;
pub use degrade::{DegradeLadder, LadderDecision};
pub use manager::{AppManager, FemuxPolicy};
pub use model::{
    label_fleet, train, train_from_labels, Classifier, ClassifierKind,
    FemuxModel, LabelledBlocks, TrainApp, TrainStats,
};
pub use tiers::{TierModel, TieredDeployment};

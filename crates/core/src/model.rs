//! The trained FeMux model and its offline training pipeline (§4.3.4).
//!
//! Training: for every training application, split its concurrency
//! series into blocks, label each block with the RUM cost of serving it
//! under each candidate forecaster ([`crate::label`]), extract block
//! features, standardize, cluster with k-means, and assign each cluster
//! the forecaster with the lowest summed RUM over its member blocks. The
//! forecaster with the lowest total RUM becomes the default used before
//! an app has completed its first block.
//!
//! The supervised alternatives (decision tree / random forest over
//! per-block argmin labels) exist to reproduce the paper's finding that
//! clustering is ~15 % better on RUM.

use femux_classify::{
    assign_clusters, DecisionTree, ForestConfig, KMeans, RandomForest,
    StandardScaler, TreeConfig,
};
use femux_features::{extract, Block};
use femux_forecast::ForecasterKind;
use femux_rum::CostRecord;

use crate::config::FemuxConfig;
use crate::label::{label_app_blocks, AppParams};

/// One training application.
#[derive(Debug, Clone)]
pub struct TrainApp {
    /// Per-step (per-minute) average concurrency.
    pub concurrency: Vec<f64>,
    /// Mean execution time, seconds.
    pub exec_secs: f64,
    /// Pod memory, GB.
    pub mem_gb: f64,
    /// Per-pod concurrency limit.
    pub pod_concurrency: u32,
}

/// The classifier backing a FeMux model.
#[derive(Debug, Clone)]
pub enum Classifier {
    /// K-means clusters with a per-cluster forecaster (FeMux's choice).
    KMeans {
        /// Fitted clustering.
        kmeans: KMeans,
        /// Forecaster per cluster.
        cluster_forecasters: Vec<ForecasterKind>,
    },
    /// CART tree over per-block argmin labels.
    Tree(DecisionTree),
    /// Random forest over per-block argmin labels.
    Forest(RandomForest),
}

/// A trained FeMux model.
#[derive(Debug, Clone)]
pub struct FemuxModel {
    /// Configuration it was trained with.
    pub cfg: FemuxConfig,
    /// Fitted feature scaler.
    pub scaler: StandardScaler,
    /// The classifier.
    pub classifier: Classifier,
    /// Default forecaster (lowest total RUM) for unclassifiable blocks.
    pub default_forecaster: ForecasterKind,
    /// Training diagnostics.
    pub stats: TrainStats,
}

/// Diagnostics from the training run.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Number of labelled blocks.
    pub n_blocks: usize,
    /// Number of training applications that produced blocks.
    pub n_apps: usize,
    /// Wall-clock spent labelling (forecast simulation), seconds.
    pub labelling_secs: f64,
    /// Wall-clock spent on feature extraction, seconds.
    pub feature_secs: f64,
    /// Wall-clock spent fitting the classifier, seconds.
    pub fit_secs: f64,
    /// Total RUM of each forecaster over all blocks, aligned with the
    /// config's forecaster list.
    pub forecaster_totals: Vec<f64>,
}

/// Which classifier to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierKind {
    /// K-means clustering (the FeMux design).
    KMeans,
    /// Supervised decision tree (comparison).
    Tree,
    /// Supervised random forest (comparison).
    Forest,
}

/// Intermediate labelled training data, exposed so experiments can reuse
/// one (expensive) labelling pass across several classifier fits.
#[derive(Debug, Clone)]
pub struct LabelledBlocks {
    /// The blocks.
    pub blocks: Vec<Block>,
    /// `rum_costs[i][f]`: RUM of block `i` under forecaster `f`.
    pub rum_costs: Vec<Vec<f64>>,
    /// Raw cost records per block per forecaster.
    pub cost_records: Vec<Vec<CostRecord>>,
    /// Labelling wall-clock, seconds.
    pub labelling_secs: f64,
}

impl LabelledBlocks {
    /// Merges another labelled set into this one (incremental
    /// retraining, §4.3.6: "retraining can be done incrementally by
    /// adding or replacing blocks").
    ///
    /// # Panics
    ///
    /// Panics if the two sets were labelled with different forecaster
    /// counts.
    pub fn merge(&mut self, other: LabelledBlocks) {
        if let (Some(a), Some(b)) =
            (self.rum_costs.first(), other.rum_costs.first())
        {
            assert_eq!(a.len(), b.len(), "forecaster sets differ");
        }
        self.blocks.extend(other.blocks);
        self.rum_costs.extend(other.rum_costs);
        self.cost_records.extend(other.cost_records);
        self.labelling_secs += other.labelling_secs;
    }

    /// Keeps only the newest `max_blocks` blocks (a sliding training
    /// window for monthly/daily retraining).
    pub fn retain_recent(&mut self, max_blocks: usize) {
        let drop = self.blocks.len().saturating_sub(max_blocks);
        self.blocks.drain(..drop);
        self.rum_costs.drain(..drop);
        self.cost_records.drain(..drop);
    }

    /// Number of labelled blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no blocks are labelled.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Labels every block of the training fleet.
///
/// Applications are labelled in parallel (each app's per-forecaster
/// `strided_forecast` + `capacity_costs` is an independent unit) and the
/// per-app results are concatenated in fleet order, so the output is
/// identical for every `FEMUX_THREADS` setting. Cost rows are *moved*
/// into `cost_records` rather than cloned, halving peak labelling
/// memory on large fleets.
pub fn label_fleet(
    apps: &[TrainApp],
    cfg: &FemuxConfig,
) -> LabelledBlocks {
    let t0 = femux_obs::walltime::monotonic_micros();
    femux_obs::counter_add("core.label_fleet.calls", 1);
    femux_obs::counter_add("core.label_fleet.apps", apps.len() as u64);
    type AppLabels = (Vec<Block>, Vec<Vec<f64>>, Vec<Vec<CostRecord>>);
    let per_app: Vec<AppLabels> = femux_par::par_map(apps, |ai, app| {
        let params = AppParams {
            mem_gb: app.mem_gb,
            pod_concurrency: app.pod_concurrency.max(1) as f64,
            exec_secs: app.exec_secs,
            step_secs: 60.0,
            cold_start_secs: cfg.cold_start_secs,
        };
        let labels = label_app_blocks(
            &app.concurrency,
            cfg.block_len,
            cfg.history,
            cfg.label_stride,
            &cfg.forecasters,
            &params,
        );
        let mut blocks = Vec::with_capacity(labels.len());
        let mut rum_costs = Vec::with_capacity(labels.len());
        let mut cost_records = Vec::with_capacity(labels.len());
        for (b, row) in labels.into_iter().enumerate() {
            let lo = cfg.history + b * cfg.block_len;
            blocks.push(Block {
                app_index: ai,
                seq: b,
                series: app.concurrency[lo..lo + cfg.block_len].to_vec(),
                exec_secs: app.exec_secs,
            });
            rum_costs.push(
                row.iter().map(|c| cfg.rum.evaluate(c)).collect(),
            );
            cost_records.push(row);
        }
        (blocks, rum_costs, cost_records)
    });
    let mut blocks = Vec::new();
    let mut rum_costs = Vec::new();
    let mut cost_records = Vec::new();
    for (app_blocks, app_rums, app_records) in per_app {
        blocks.extend(app_blocks);
        rum_costs.extend(app_rums);
        cost_records.extend(app_records);
    }
    femux_obs::counter_add(
        "core.label_fleet.blocks",
        blocks.len() as u64,
    );
    femux_obs::walltime::record_elapsed("wall.core.label_fleet_us", t0);
    LabelledBlocks {
        blocks,
        rum_costs,
        cost_records,
        labelling_secs: femux_obs::walltime::elapsed_secs(t0),
    }
}

/// Trains a FeMux model from pre-labelled blocks.
///
/// Returns `None` when there are no blocks to train on (callers should
/// fall back to a single-forecaster deployment).
pub fn train_from_labels(
    labelled: &LabelledBlocks,
    cfg: &FemuxConfig,
    kind: ClassifierKind,
) -> Option<FemuxModel> {
    if labelled.blocks.is_empty() {
        return None;
    }
    let tf = femux_obs::walltime::monotonic_micros();
    let rows = femux_features::extract_all(&labelled.blocks, &cfg.features);
    let feature_secs = femux_obs::walltime::elapsed_secs(tf);
    femux_obs::walltime::record_elapsed("wall.core.extract_all_us", tf);
    let scaler = StandardScaler::fit(&rows);
    let scaled = scaler.transform(&rows);

    let n_forecasters = cfg.forecasters.len();
    let mut forecaster_totals = vec![0.0; n_forecasters];
    for row in &labelled.rum_costs {
        for (t, &c) in forecaster_totals.iter_mut().zip(row) {
            *t += c;
        }
    }
    let default_idx = argmin(&forecaster_totals);

    let t1 = femux_obs::walltime::monotonic_micros();
    femux_obs::counter_add("core.train.fits", 1);
    femux_obs::counter_add(
        "core.train.blocks",
        labelled.blocks.len() as u64,
    );
    let classifier = match kind {
        ClassifierKind::KMeans => {
            let kmeans = KMeans::fit(&scaled, &cfg.kmeans);
            let assignments = kmeans.predict_all(&scaled);
            let (per_cluster, _) = assign_clusters(
                &assignments,
                &labelled.rum_costs,
                kmeans.k(),
            );
            Classifier::KMeans {
                kmeans,
                cluster_forecasters: per_cluster
                    .iter()
                    .map(|&i| cfg.forecasters[i])
                    .collect(),
            }
        }
        ClassifierKind::Tree | ClassifierKind::Forest => {
            let labels: Vec<usize> =
                labelled.rum_costs.iter().map(|row| argmin(row)).collect();
            if kind == ClassifierKind::Tree {
                Classifier::Tree(DecisionTree::fit(
                    &scaled,
                    &labels,
                    &TreeConfig::default(),
                ))
            } else {
                Classifier::Forest(RandomForest::fit(
                    &scaled,
                    &labels,
                    &ForestConfig::default(),
                ))
            }
        }
    };
    let fit_secs = femux_obs::walltime::elapsed_secs(t1);
    femux_obs::walltime::record_elapsed("wall.core.classifier_fit_us", t1);

    Some(FemuxModel {
        cfg: cfg.clone(),
        scaler,
        classifier,
        default_forecaster: cfg.forecasters[default_idx],
        stats: TrainStats {
            n_blocks: labelled.blocks.len(),
            n_apps: labelled
                .blocks
                .iter()
                .map(|b| b.app_index)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            labelling_secs: labelled.labelling_secs,
            feature_secs,
            fit_secs,
            forecaster_totals,
        },
    })
}

/// Full pipeline: label, extract, fit.
pub fn train(
    apps: &[TrainApp],
    cfg: &FemuxConfig,
    kind: ClassifierKind,
) -> Option<FemuxModel> {
    let labelled = label_fleet(apps, cfg);
    train_from_labels(&labelled, cfg, kind)
}

fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("costs are finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl FemuxModel {
    /// Selects the forecaster for a completed block.
    pub fn select(&self, block: &Block) -> ForecasterKind {
        if femux_features::is_idle(block) {
            return self.default_forecaster;
        }
        self.select_from_features(
            &extract(block, &self.cfg.features),
            false,
        )
    }

    /// Selects the forecaster from an already-extracted (raw, unscaled)
    /// feature row — the online path, where the serving harness
    /// maintains features incrementally and never materializes a
    /// [`Block`]. `idle` is the block's [`femux_features::is_idle`]
    /// verdict; idle blocks route to the default forecaster without
    /// classification, exactly as [`FemuxModel::select`] does.
    pub fn select_from_features(
        &self,
        features: &[f64],
        idle: bool,
    ) -> ForecasterKind {
        if idle {
            return self.default_forecaster;
        }
        let mut feats = features.to_vec();
        self.scaler.transform_row(&mut feats);
        match &self.classifier {
            Classifier::KMeans {
                kmeans,
                cluster_forecasters,
            } => {
                let cluster = kmeans.predict(&feats);
                cluster_forecasters
                    .get(cluster)
                    .copied()
                    .unwrap_or(self.default_forecaster)
            }
            Classifier::Tree(tree) => {
                let label = tree.predict(&feats);
                self.cfg
                    .forecasters
                    .get(label)
                    .copied()
                    .unwrap_or(self.default_forecaster)
            }
            Classifier::Forest(forest) => {
                let label = forest.predict(&feats);
                self.cfg
                    .forecasters
                    .get(label)
                    .copied()
                    .unwrap_or(self.default_forecaster)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::rng::Rng;

    /// A fleet whose apps are either strongly periodic (FFT territory)
    /// or noisy-stationary (AR/SES territory).
    fn mixed_fleet(n: usize, len: usize, seed: u64) -> Vec<TrainApp> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let series: Vec<f64> = if i % 2 == 0 {
                    (0..len)
                        .map(|t| {
                            5.0 + 4.0
                                * (2.0 * std::f64::consts::PI * t as f64
                                    / 24.0)
                                    .sin()
                        })
                        .collect()
                } else {
                    (0..len)
                        .map(|_| (2.0 + rng.normal()).max(0.0))
                        .collect()
                };
                TrainApp {
                    concurrency: series,
                    exec_secs: 0.5,
                    mem_gb: 0.5,
                    pod_concurrency: 1,
                }
            })
            .collect()
    }

    #[test]
    fn training_produces_model() {
        let cfg = FemuxConfig::for_tests();
        let apps = mixed_fleet(6, 600, 1);
        let model =
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model");
        assert!(model.stats.n_blocks > 0);
        assert_eq!(model.stats.n_apps, 6);
        assert_eq!(
            model.stats.forecaster_totals.len(),
            cfg.forecasters.len()
        );
    }

    #[test]
    fn periodic_blocks_route_to_their_best_forecaster() {
        let cfg = FemuxConfig::for_tests();
        let apps = mixed_fleet(8, 600, 2);
        let labelled = label_fleet(&apps, &cfg);
        let model = train_from_labels(&labelled, &cfg, ClassifierKind::KMeans)
            .expect("model");
        // The forecaster with the lowest total RUM over the *periodic*
        // training blocks (apps with even index) is the right answer for
        // a fresh periodic block.
        let mut totals = vec![0.0; cfg.forecasters.len()];
        for (block, costs) in
            labelled.blocks.iter().zip(&labelled.rum_costs)
        {
            if block.app_index % 2 == 0 {
                for (t, &c) in totals.iter_mut().zip(costs) {
                    *t += c;
                }
            }
        }
        let best = cfg.forecasters[super::argmin(&totals)];
        let block = Block {
            app_index: 0,
            seq: 0,
            series: (0..cfg.block_len)
                .map(|t| {
                    5.0 + 4.0
                        * (2.0 * std::f64::consts::PI * t as f64 / 24.0)
                            .sin()
                })
                .collect(),
            exec_secs: 0.5,
        };
        let chosen = model.select(&block);
        assert_eq!(
            chosen, best,
            "periodic block should route to the periodic cluster's best"
        );
    }

    #[test]
    fn idle_block_uses_default() {
        let cfg = FemuxConfig::for_tests();
        let apps = mixed_fleet(4, 600, 3);
        let model =
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model");
        let idle = Block {
            app_index: 0,
            seq: 0,
            series: vec![0.0; cfg.block_len],
            exec_secs: 0.5,
        };
        assert_eq!(model.select(&idle), model.default_forecaster);
    }

    #[test]
    fn supervised_classifiers_also_train() {
        let cfg = FemuxConfig::for_tests();
        let apps = mixed_fleet(6, 600, 4);
        let labelled = label_fleet(&apps, &cfg);
        for kind in [ClassifierKind::Tree, ClassifierKind::Forest] {
            let model = train_from_labels(&labelled, &cfg, kind)
                .expect("model trains");
            let block = Block {
                app_index: 0,
                seq: 0,
                series: vec![1.0; cfg.block_len],
                exec_secs: 0.5,
            };
            // Selection returns something from the configured set.
            assert!(cfg.forecasters.contains(&model.select(&block)));
        }
    }

    #[test]
    fn empty_fleet_returns_none() {
        let cfg = FemuxConfig::for_tests();
        assert!(train(&[], &cfg, ClassifierKind::KMeans).is_none());
        // Apps too short for a single block also yield none.
        let short = vec![TrainApp {
            concurrency: vec![1.0; 50],
            exec_secs: 1.0,
            mem_gb: 1.0,
            pod_concurrency: 1,
        }];
        assert!(train(&short, &cfg, ClassifierKind::KMeans).is_none());
    }

    #[test]
    fn incremental_retraining_extends_blocks() {
        let cfg = FemuxConfig::for_tests();
        let mut labelled = label_fleet(&mixed_fleet(4, 600, 7), &cfg);
        let first = labelled.len();
        assert!(first > 0);
        let more = label_fleet(&mixed_fleet(2, 600, 8), &cfg);
        let added = more.len();
        labelled.merge(more);
        assert_eq!(labelled.len(), first + added);
        let model = train_from_labels(&labelled, &cfg, ClassifierKind::KMeans)
            .expect("retrains");
        assert_eq!(model.stats.n_blocks, first + added);
        // Sliding window keeps only the newest blocks.
        labelled.retain_recent(3);
        assert_eq!(labelled.len(), 3);
        assert!(!labelled.is_empty());
        let small = train_from_labels(&labelled, &cfg, ClassifierKind::KMeans)
            .expect("still trains");
        assert_eq!(small.stats.n_blocks, 3);
    }

    #[test]
    fn default_forecaster_minimizes_total_rum() {
        let cfg = FemuxConfig::for_tests();
        let apps = mixed_fleet(6, 600, 5);
        let model =
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model");
        let idx = cfg
            .forecasters
            .iter()
            .position(|k| *k == model.default_forecaster)
            .expect("default comes from the set");
        let min = model
            .stats
            .forecaster_totals
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            (model.stats.forecaster_totals[idx] - min).abs() < 1e-9
        );
    }
}

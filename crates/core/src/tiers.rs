//! Multi-tier deployments: several RUMs on one platform (§5.1.2).
//!
//! Providers can run premium applications under a cold-start-weighted
//! RUM and regular applications under the default, simultaneously. A
//! [`TieredDeployment`] owns one trained model per tier and routes each
//! application to its tier's model; the whole pipeline — labelling,
//! classification, forecasting — stays per-tier, which is exactly what
//! makes RUM-based design "decoupled" from the platform.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::model::FemuxModel;

/// A named tier with its trained model.
#[derive(Clone)]
pub struct TierModel {
    /// Tier name ("premium", "regular", ...).
    pub name: &'static str,
    /// The model trained with this tier's RUM.
    pub model: Arc<FemuxModel>,
}

/// A deployment running several tiers side by side.
pub struct TieredDeployment {
    tiers: Vec<TierModel>,
    /// App index -> tier index; apps not present use `default_tier`.
    /// Ordered so any future enumeration of assignments is
    /// deterministic (it reaches per-tier reports).
    assignment: BTreeMap<usize, usize>,
    default_tier: usize,
}

impl TieredDeployment {
    /// Creates a deployment. `default_tier` indexes into `tiers`.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty or `default_tier` out of range.
    pub fn new(tiers: Vec<TierModel>, default_tier: usize) -> Self {
        assert!(!tiers.is_empty(), "need at least one tier");
        assert!(default_tier < tiers.len(), "default tier out of range");
        TieredDeployment {
            tiers,
            assignment: BTreeMap::new(),
            default_tier,
        }
    }

    /// Assigns an application to a tier by name.
    ///
    /// # Panics
    ///
    /// Panics if no tier has that name.
    pub fn assign(&mut self, app_index: usize, tier_name: &str) {
        let tier = self
            .tiers
            .iter()
            .position(|t| t.name == tier_name)
            // audit:allow(panic-path, reason = "documented public-API contract (# Panics): an unknown tier name is a caller bug, not a data error")
            .unwrap_or_else(|| panic!("unknown tier {tier_name:?}"));
        self.assignment.insert(app_index, tier);
    }

    /// Returns the tier an application runs under.
    pub fn tier_of(&self, app_index: usize) -> &TierModel {
        let idx = self
            .assignment
            .get(&app_index)
            .copied()
            .unwrap_or(self.default_tier);
        &self.tiers[idx]
    }

    /// Returns the model an application runs under.
    pub fn model_of(&self, app_index: usize) -> Arc<FemuxModel> {
        Arc::clone(&self.tier_of(app_index).model)
    }

    /// Returns the tier names in order.
    pub fn tier_names(&self) -> Vec<&'static str> {
        self.tiers.iter().map(|t| t.name).collect()
    }

    /// Number of applications explicitly assigned per tier (the
    /// remainder runs on the default tier).
    pub fn assigned_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.tiers.len()];
        for &t in self.assignment.values() {
            counts[t] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FemuxConfig;
    use crate::model::{train, ClassifierKind, TrainApp};
    use femux_rum::RumSpec;

    fn tiny_model(rum: RumSpec) -> Arc<FemuxModel> {
        let cfg = FemuxConfig {
            rum,
            ..FemuxConfig::for_tests()
        };
        let apps: Vec<TrainApp> = (0..4)
            .map(|i| TrainApp {
                concurrency: (0..400)
                    .map(|t| {
                        (2.0 + ((t + i * 3) as f64 * 0.3).sin()).max(0.0)
                    })
                    .collect(),
                exec_secs: 0.5,
                mem_gb: 0.25,
                pod_concurrency: 1,
            })
            .collect();
        Arc::new(train(&apps, &cfg, ClassifierKind::KMeans).expect("model"))
    }

    fn deployment() -> TieredDeployment {
        TieredDeployment::new(
            vec![
                TierModel {
                    name: "regular",
                    model: tiny_model(RumSpec::default_paper()),
                },
                TierModel {
                    name: "premium",
                    model: tiny_model(RumSpec::femux_cs()),
                },
            ],
            0,
        )
    }

    #[test]
    fn routes_by_assignment_with_default_fallback() {
        let mut dep = deployment();
        dep.assign(7, "premium");
        assert_eq!(dep.tier_of(7).name, "premium");
        assert_eq!(dep.tier_of(3).name, "regular");
        assert_eq!(dep.assigned_counts(), vec![0, 1]);
        assert_eq!(dep.tier_names(), vec!["regular", "premium"]);
    }

    #[test]
    fn models_carry_their_tier_rum() {
        let mut dep = deployment();
        dep.assign(1, "premium");
        assert_eq!(dep.model_of(1).cfg.rum, RumSpec::femux_cs());
        assert_eq!(dep.model_of(2).cfg.rum, RumSpec::default_paper());
    }

    #[test]
    #[should_panic(expected = "unknown tier")]
    fn unknown_tier_panics() {
        deployment().assign(0, "platinum");
    }
}

//! Statistical error metrics.
//!
//! §4.2.1 of the paper contrasts generic accuracy metrics (MAE, SMAPE)
//! with RUM: the same pair of forecasters can rank differently under MAE
//! and under the system metric that actually matters. These functions are
//! used by the `c1_metric_disagreement` experiment and by forecaster
//! tests.

/// Mean Absolute Error between forecasts and truth.
///
/// Returns 0 for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(forecast: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(forecast.len(), truth.len(), "length mismatch");
    if forecast.is_empty() {
        return 0.0;
    }
    forecast
        .iter()
        .zip(truth)
        .map(|(f, t)| (f - t).abs())
        .sum::<f64>()
        / forecast.len() as f64
}

/// Symmetric Mean Absolute Percentage Error, in `[0, 2]`.
///
/// Uses the convention that a term with both forecast and truth equal to
/// zero contributes zero error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn smape(forecast: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(forecast.len(), truth.len(), "length mismatch");
    if forecast.is_empty() {
        return 0.0;
    }
    forecast
        .iter()
        .zip(truth)
        .map(|(f, t)| {
            let denom = f.abs() + t.abs();
            if denom == 0.0 {
                0.0
            } else {
                2.0 * (f - t).abs() / denom
            }
        })
        .sum::<f64>()
        / forecast.len() as f64
}

/// Root Mean Squared Error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(forecast: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(forecast.len(), truth.len(), "length mismatch");
    if forecast.is_empty() {
        return 0.0;
    }
    (forecast
        .iter()
        .zip(truth)
        .map(|(f, t)| (f - t) * (f - t))
        .sum::<f64>()
        / forecast.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        assert!((mae(&[1.0, 2.0], &[2.0, 4.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn smape_bounds_and_symmetry() {
        let a = [1.0, 5.0, 0.0];
        let b = [2.0, 3.0, 0.0];
        let s1 = smape(&a, &b);
        let s2 = smape(&b, &a);
        assert!((s1 - s2).abs() < 1e-12);
        assert!((0.0..=2.0).contains(&s1));
    }

    #[test]
    fn smape_zero_zero_is_zero() {
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
        // Completely wrong sign-free forecast hits the max of 2.
        assert!((smape(&[1.0], &[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let f = [0.0, 0.0, 0.0, 0.0];
        let t = [0.0, 0.0, 0.0, 4.0];
        assert!(rmse(&f, &t) > mae(&f, &t));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(smape(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}

//! Representative Unified Metric (RUM).
//!
//! RUM is the paper's central abstraction (§4.1): a tunable objective that
//! encodes the efficiency/performance trade-off and is used *both* to
//! optimize system components (forecaster selection, classifier training)
//! and to evaluate the platform — aligning what the system optimizes with
//! what the provider measures. Two formulations from the paper:
//!
//! - **Eq. (1)**: `w1 * cold_start_seconds + w2 * wasted_GB_seconds`
//! - **Eq. (2)**: `w1 * sqrt(cold_start_seconds / exec_seconds) + w2 *
//!   wasted_GB_seconds` (emphasizes cold starts for short executions)
//!
//! The default weights are derived in [`weights`] from public cloud data:
//! `w1 = 1`, `w2 = 1/99.7`.

pub mod costs;
pub mod error;
pub mod weights;

pub use costs::{aggregate, CostRecord};

/// A RUM formulation with its weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RumSpec {
    /// Eq. (1): linear combination of cold-start seconds and waste.
    Weighted {
        /// Weight per cold-start second.
        w_cold: f64,
        /// Weight per wasted GB-second.
        w_mem: f64,
    },
    /// Eq. (2): cold-start impact relative to execution time.
    ExecAware {
        /// Weight on `sqrt(cold_start_seconds / exec_seconds)`.
        w_cold: f64,
        /// Weight per wasted GB-second.
        w_mem: f64,
    },
}

impl RumSpec {
    /// The paper's default RUM: Eq. (1) with `w1 = 1`, `w2 = 1/99.7`.
    pub fn default_paper() -> Self {
        RumSpec::Weighted {
            w_cold: weights::paper::W1,
            w_mem: weights::paper::W2,
        }
    }

    /// FeMux-CS: cold-start weight quadrupled (§5.1.1).
    pub fn femux_cs() -> Self {
        RumSpec::Weighted {
            w_cold: 4.0 * weights::paper::W1,
            w_mem: weights::paper::W2,
        }
    }

    /// FeMux-Mem: memory weight quadrupled (§5.1.1).
    pub fn femux_mem() -> Self {
        RumSpec::Weighted {
            w_cold: weights::paper::W1,
            w_mem: 4.0 * weights::paper::W2,
        }
    }

    /// FeMux-Exec: the execution-time-aware RUM, Eq. (2) (§5.1.3).
    pub fn femux_exec() -> Self {
        RumSpec::ExecAware {
            w_cold: weights::paper::W1,
            w_mem: weights::paper::W2,
        }
    }

    /// A short display name for experiment output.
    pub fn label(&self) -> String {
        match *self {
            RumSpec::Weighted { w_cold, w_mem } => {
                format!("rum(w1={w_cold:.3},w2={w_mem:.5})")
            }
            RumSpec::ExecAware { w_cold, w_mem } => {
                format!("rum-exec(w1={w_cold:.3},w2={w_mem:.5})")
            }
        }
    }

    /// Evaluates the RUM over one application's costs. Lower is better.
    pub fn evaluate(&self, costs: &CostRecord) -> f64 {
        femux_obs::counter_add("rum.evaluations", 1);
        match *self {
            RumSpec::Weighted { w_cold, w_mem } => {
                w_cold * costs.cold_start_seconds
                    + w_mem * costs.wasted_gb_seconds
            }
            RumSpec::ExecAware { w_cold, w_mem } => {
                let ratio = if costs.exec_seconds > 0.0 {
                    costs.cold_start_seconds / costs.exec_seconds
                } else if costs.cold_start_seconds > 0.0 {
                    // All cold start, no execution: maximal impact.
                    costs.cold_start_seconds / 1e-3
                } else {
                    0.0
                };
                w_cold * ratio.sqrt() + w_mem * costs.wasted_gb_seconds
            }
        }
    }

    /// Evaluates the RUM over a set of per-application records by
    /// summing per-app values (the paper aggregates RUM across apps).
    pub fn evaluate_fleet<'a, I>(&self, records: I) -> f64
    where
        I: IntoIterator<Item = &'a CostRecord>,
    {
        records.into_iter().map(|r| self.evaluate(r)).sum()
    }
}

/// A service tier in a multi-RUM deployment (§5.1.2): providers run
/// premium and regular applications under different RUMs simultaneously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    /// Tier name ("premium", "regular").
    pub name: &'static str,
    /// The RUM optimized for this tier.
    pub rum: RumSpec,
}

/// The paper's two-tier example: 10 % premium on FeMux-CS, 90 % regular
/// on the default RUM.
pub fn paper_tiers() -> (Tier, Tier, f64) {
    (
        Tier {
            name: "premium",
            rum: RumSpec::femux_cs(),
        },
        Tier {
            name: "regular",
            rum: RumSpec::default_paper(),
        },
        0.10,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cs_secs: f64, waste: f64, exec: f64) -> CostRecord {
        CostRecord {
            invocations: 10,
            cold_starts: 1,
            cold_start_seconds: cs_secs,
            wasted_gb_seconds: waste,
            allocated_gb_seconds: waste + exec,
            exec_seconds: exec,
            service_seconds: exec + cs_secs,
        }
    }

    #[test]
    fn default_rum_trade_off_point() {
        // 99.7 wasted GB-s is worth exactly one cold-start second.
        let rum = RumSpec::default_paper();
        let cs = record(1.0, 0.0, 10.0);
        let mem = record(0.0, 99.7, 10.0);
        assert!((rum.evaluate(&cs) - rum.evaluate(&mem)).abs() < 1e-9);
    }

    #[test]
    fn cs_variant_penalizes_cold_starts_4x() {
        let base = RumSpec::default_paper();
        let cs = RumSpec::femux_cs();
        let r = record(2.0, 0.0, 1.0);
        assert!((cs.evaluate(&r) - 4.0 * base.evaluate(&r)).abs() < 1e-12);
    }

    #[test]
    fn mem_variant_penalizes_waste_4x() {
        let base = RumSpec::default_paper();
        let mem = RumSpec::femux_mem();
        let r = record(0.0, 50.0, 1.0);
        assert!(
            (mem.evaluate(&r) - 4.0 * base.evaluate(&r)).abs() < 1e-12
        );
    }

    #[test]
    fn exec_aware_rum_scales_with_execution_time() {
        // Same cold-start seconds: a short-exec app is hit harder.
        let rum = RumSpec::femux_exec();
        let short = record(1.0, 0.0, 0.5);
        let long = record(1.0, 0.0, 500.0);
        assert!(rum.evaluate(&short) > rum.evaluate(&long));
    }

    #[test]
    fn exec_aware_handles_zero_exec() {
        let rum = RumSpec::femux_exec();
        let degenerate = record(1.0, 0.0, 0.0);
        assert!(rum.evaluate(&degenerate).is_finite());
        assert!(rum.evaluate(&degenerate) > 0.0);
        let idle = record(0.0, 0.0, 0.0);
        assert_eq!(rum.evaluate(&idle), 0.0);
    }

    #[test]
    fn rum_is_monotone_in_weights() {
        let r = record(3.0, 30.0, 1.0);
        let low = RumSpec::Weighted {
            w_cold: 1.0,
            w_mem: 0.01,
        };
        let high = RumSpec::Weighted {
            w_cold: 2.0,
            w_mem: 0.01,
        };
        assert!(high.evaluate(&r) > low.evaluate(&r));
    }

    #[test]
    fn fleet_evaluation_sums() {
        let rum = RumSpec::default_paper();
        let rs = vec![record(1.0, 10.0, 5.0), record(2.0, 0.0, 5.0)];
        let total = rum.evaluate_fleet(&rs);
        let by_hand = rum.evaluate(&rs[0]) + rum.evaluate(&rs[1]);
        assert!((total - by_hand).abs() < 1e-12);
    }

    #[test]
    fn paper_tiers_shape() {
        let (premium, regular, frac) = paper_tiers();
        assert_eq!(premium.name, "premium");
        assert_eq!(regular.rum, RumSpec::default_paper());
        assert!((frac - 0.10).abs() < 1e-12);
        assert_eq!(premium.rum, RumSpec::femux_cs());
    }
}

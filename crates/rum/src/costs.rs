//! Cost records: the raw quantities RUMs are computed from.
//!
//! Every lifetime-management experiment in the paper reduces to a handful
//! of per-application totals — cold-start seconds, wasted/allocated
//! GB-seconds, execution time, invocation and cold-start counts. The
//! simulator emits one [`CostRecord`] per application; RUM formulations
//! and prior-work metrics are all functions of these records.

/// Accumulated costs for one application over a simulated span.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostRecord {
    /// Total invocations served.
    pub invocations: u64,
    /// Invocations that experienced a cold start.
    pub cold_starts: u64,
    /// Total cold-start latency paid, in seconds.
    pub cold_start_seconds: f64,
    /// Pod-time spent idle (allocated but not executing), weighted by the
    /// app's memory footprint, in GB-seconds.
    pub wasted_gb_seconds: f64,
    /// Total pod-time allocated, weighted by memory, in GB-seconds.
    pub allocated_gb_seconds: f64,
    /// Total execution time across invocations, in seconds.
    pub exec_seconds: f64,
    /// Total service time (queuing + cold start + execution), seconds.
    pub service_seconds: f64,
}

impl CostRecord {
    /// Fraction of invocations that were cold, or 0 for idle apps.
    pub fn cold_start_fraction(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// Merges another record into this one (summing all fields).
    pub fn merge(&mut self, other: &CostRecord) {
        self.invocations += other.invocations;
        self.cold_starts += other.cold_starts;
        self.cold_start_seconds += other.cold_start_seconds;
        self.wasted_gb_seconds += other.wasted_gb_seconds;
        self.allocated_gb_seconds += other.allocated_gb_seconds;
        self.exec_seconds += other.exec_seconds;
        self.service_seconds += other.service_seconds;
    }

    /// Validates internal consistency: counts and costs non-negative,
    /// cold starts bounded by invocations, waste bounded by allocation.
    pub fn check(&self) -> Result<(), String> {
        if self.cold_starts > self.invocations {
            return Err(format!(
                "{} cold starts exceed {} invocations",
                self.cold_starts, self.invocations
            ));
        }
        for (name, v) in [
            ("cold_start_seconds", self.cold_start_seconds),
            ("wasted_gb_seconds", self.wasted_gb_seconds),
            ("allocated_gb_seconds", self.allocated_gb_seconds),
            ("exec_seconds", self.exec_seconds),
            ("service_seconds", self.service_seconds),
        ] {
            if v.is_nan() || v < 0.0 {
                return Err(format!("{name} is negative or NaN: {v}"));
            }
        }
        // Allow a small tolerance for rounding at interval edges.
        if self.wasted_gb_seconds > self.allocated_gb_seconds * 1.0001 + 1e-6
        {
            return Err(format!(
                "waste {} exceeds allocation {}",
                self.wasted_gb_seconds, self.allocated_gb_seconds
            ));
        }
        Ok(())
    }
}

/// Sums a set of per-application records into a fleet total.
pub fn aggregate<'a, I>(records: I) -> CostRecord
where
    I: IntoIterator<Item = &'a CostRecord>,
{
    let mut total = CostRecord::default();
    for r in records {
        total.merge(r);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostRecord {
        CostRecord {
            invocations: 100,
            cold_starts: 4,
            cold_start_seconds: 3.2,
            wasted_gb_seconds: 50.0,
            allocated_gb_seconds: 120.0,
            exec_seconds: 70.0,
            service_seconds: 73.2,
        }
    }

    #[test]
    fn fraction_and_merge() {
        let mut a = sample();
        assert!((a.cold_start_fraction() - 0.04).abs() < 1e-12);
        a.merge(&sample());
        assert_eq!(a.invocations, 200);
        assert!((a.cold_start_seconds - 6.4).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(CostRecord::default().cold_start_fraction(), 0.0);
    }

    #[test]
    fn check_accepts_valid() {
        assert!(sample().check().is_ok());
    }

    #[test]
    fn check_rejects_impossible_counts() {
        let mut r = sample();
        r.cold_starts = 200;
        assert!(r.check().is_err());
    }

    #[test]
    fn check_rejects_waste_above_allocation() {
        let mut r = sample();
        r.wasted_gb_seconds = 200.0;
        assert!(r.check().is_err());
    }

    #[test]
    fn check_rejects_nan() {
        let mut r = sample();
        r.exec_seconds = f64::NAN;
        assert!(r.check().is_err());
    }

    #[test]
    fn aggregate_sums() {
        let records = vec![sample(), sample(), CostRecord::default()];
        let total = aggregate(&records);
        assert_eq!(total.invocations, 200);
        assert_eq!(total.cold_starts, 8);
    }
}

//! Derivation of the default RUM weights from public cloud data.
//!
//! §4.1 of the paper sets the default weight ratio from publicly
//! available numbers: a market-share-weighted keep-alive time across AWS,
//! Azure, and Google of ~537 s, the Azure '19 median memory consumption
//! of 150 MB (so ≈80.5 GB-s wasted per cold start avoided), and a
//! language- and provider-weighted average cold-start duration of
//! ~0.808 s — yielding ≈99.7 GB-s of waste per cold-start second, i.e.
//! `w1 = 1`, `w2 = 1/99.7`.
//!
//! The per-provider inputs below are approximations of the cited public
//! measurements (Shilkov's cold-start study, the FaaS idle-timeout case
//! study, market-share reports); what matters for the reproduction is
//! that the derivation lands on the paper's published constants.

/// Public inputs for one provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderData {
    /// Provider name.
    pub name: &'static str,
    /// Cloud market share (unnormalized).
    pub market_share: f64,
    /// Observed keep-alive/idle-timeout in seconds.
    pub keep_alive_secs: f64,
    /// Language-popularity-weighted average cold-start duration, seconds.
    pub cold_start_secs: f64,
}

/// The big-three provider inputs used by the paper's analysis.
pub fn big_three() -> [ProviderData; 3] {
    [
        ProviderData {
            name: "AWS",
            market_share: 0.32,
            keep_alive_secs: 360.0,
            cold_start_secs: 0.45,
        },
        ProviderData {
            name: "Azure",
            market_share: 0.23,
            keep_alive_secs: 900.0,
            cold_start_secs: 1.40,
        },
        ProviderData {
            name: "Google",
            market_share: 0.12,
            keep_alive_secs: 300.0,
            cold_start_secs: 0.63,
        },
    ]
}

/// Median memory consumption of Azure '19 workloads, GB (150 MB).
pub const MEDIAN_MEMORY_GB: f64 = 0.15;

/// Market-share-weighted average of a per-provider quantity.
pub fn weighted_average<F: Fn(&ProviderData) -> f64>(
    providers: &[ProviderData],
    f: F,
) -> f64 {
    let total: f64 = providers.iter().map(|p| p.market_share).sum();
    providers
        .iter()
        .map(|p| p.market_share / total * f(p))
        .sum()
}

/// Derived default-RUM constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedWeights {
    /// Provider-agnostic keep-alive time, seconds (paper: 537).
    pub keep_alive_secs: f64,
    /// Average cold-start duration, seconds (paper: 0.808).
    pub cold_start_secs: f64,
    /// Wasted GB-seconds per avoided cold start (paper: 80.5).
    pub waste_per_cold_start_gbs: f64,
    /// Wasted GB-seconds per cold-start second (paper: 99.7).
    pub waste_per_cold_start_second: f64,
}

/// Runs the paper's §4.1 derivation.
pub fn derive() -> DerivedWeights {
    let providers = big_three();
    let keep_alive_secs =
        weighted_average(&providers, |p| p.keep_alive_secs);
    let cold_start_secs =
        weighted_average(&providers, |p| p.cold_start_secs);
    let waste_per_cold_start_gbs = keep_alive_secs * MEDIAN_MEMORY_GB;
    DerivedWeights {
        keep_alive_secs,
        cold_start_secs,
        waste_per_cold_start_gbs,
        waste_per_cold_start_second: waste_per_cold_start_gbs
            / cold_start_secs,
    }
}

/// The paper's published constants, used as the fixed defaults so results
/// do not drift with the approximation above.
pub mod paper {
    /// Fixed cold-start duration used in the default analyses, seconds.
    pub const COLD_START_SECS: f64 = 0.808;
    /// GB-seconds of waste a provider accepts per cold-start second.
    pub const WASTE_PER_COLD_START_SECOND: f64 = 99.7;
    /// Default `w1` (per cold-start second).
    pub const W1: f64 = 1.0;
    /// Default `w2` (per wasted GB-second).
    pub const W2: f64 = 1.0 / WASTE_PER_COLD_START_SECOND;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_lands_on_paper_constants() {
        let d = derive();
        assert!(
            (d.keep_alive_secs - 537.0).abs() < 10.0,
            "keep-alive {}",
            d.keep_alive_secs
        );
        assert!(
            (d.cold_start_secs - 0.808).abs() < 0.02,
            "cold start {}",
            d.cold_start_secs
        );
        assert!(
            (d.waste_per_cold_start_gbs - 80.5).abs() < 2.0,
            "waste/cold start {}",
            d.waste_per_cold_start_gbs
        );
        assert!(
            (d.waste_per_cold_start_second - 99.7).abs() < 3.0,
            "waste/cs-second {}",
            d.waste_per_cold_start_second
        );
    }

    #[test]
    fn weighted_average_normalizes_shares() {
        let providers = [
            ProviderData {
                name: "a",
                market_share: 1.0,
                keep_alive_secs: 10.0,
                cold_start_secs: 1.0,
            },
            ProviderData {
                name: "b",
                market_share: 3.0,
                keep_alive_secs: 20.0,
                cold_start_secs: 1.0,
            },
        ];
        let avg = weighted_average(&providers, |p| p.keep_alive_secs);
        assert!((avg - 17.5).abs() < 1e-12);
    }

    #[test]
    fn paper_w2_is_reciprocal() {
        assert!(
            (paper::W2 * paper::WASTE_PER_COLD_START_SECOND - 1.0).abs()
                < 1e-12
        );
    }
}

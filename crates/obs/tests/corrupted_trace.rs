//! The validator must reject hand-corrupted traces: a duplicate flow
//! start id (two pods claiming the same causal arrow) and a timestamp
//! that runs backwards within a lane. Both fixtures are otherwise
//! well-formed, so anything weaker than the targeted check would pass
//! them.

use femux_obs::validate::validate_chrome_trace;

#[test]
fn duplicate_flow_id_fixture_is_rejected() {
    let text = include_str!("fixtures/corrupted_duplicate_flow.json");
    let err = validate_chrome_trace(text).expect_err("must be rejected");
    assert!(
        err.contains("duplicate flow start") && err.contains("314159"),
        "unexpected error: {err}"
    );
}

#[test]
fn backwards_timestamp_fixture_is_rejected() {
    let text = include_str!("fixtures/corrupted_backwards_ts.json");
    let err = validate_chrome_trace(text).expect_err("must be rejected");
    assert!(err.contains("monotone"), "unexpected error: {err}");
}

#[test]
fn uncorrupting_the_fixtures_makes_them_pass() {
    // The same fixtures with the corruption undone validate cleanly —
    // the rejections above are the targeted checks, not collateral.
    let dup = include_str!("fixtures/corrupted_duplicate_flow.json")
        .replace("\"ts\":2500,\"id\":314159", "\"ts\":2500,\"id\":314160");
    let s = validate_chrome_trace(&dup).expect("de-duplicated trace valid");
    assert_eq!((s.events, s.flows), (1, 3));
    let ts = include_str!("fixtures/corrupted_backwards_ts.json")
        .replace("\"ts\":59000", "\"ts\":61000");
    let s = validate_chrome_trace(&ts).expect("monotone trace valid");
    assert_eq!(s.events, 2);
}

//! Deterministic structured telemetry for the FeMux reproduction.
//!
//! The paper's claims are end-to-end pipeline numbers; when a figure
//! drifts, this crate is how we see *which stage* diverged and where the
//! time goes. It provides three primitives, all recorded into per-thread
//! sinks and merged deterministically:
//!
//! - **counters** ([`counter_add`]) — monotonic `u64` sums;
//! - **histograms** ([`observe`]) — fixed power-of-two buckets over
//!   `u64` observations (see [`hist`]);
//! - **trace events** ([`span`], [`instant`]) — timestamped entries on
//!   named *tracks*, exported as Chrome `chrome://tracing` JSON.
//!
//! # Clock rules
//!
//! Two clocks exist and they never mix:
//!
//! 1. **Virtual time** — simulator/Knative milliseconds, passed by the
//!    caller. All semantic events (cold starts, scale decisions) carry
//!    virtual timestamps and are fully reproducible.
//! 2. **Wall time** — quarantined in [`walltime`], the one
//!    audit-sanctioned clock site, and only recorded into `wall.*`
//!    metrics while [`set_profiling`] is on (which waives the
//!    determinism guarantee for those metrics alone).
//!
//! # Determinism contract
//!
//! With profiling off, [`collect`]'s report serializes to byte-identical
//! JSON for any `FEMUX_THREADS` value: counters and histograms merge by
//! commutative integer addition, and events are ordered by
//! `(track, seq)` where the per-track sequence is assigned at emission.
//! The corollary contract for instrumentation sites: a track must only
//! be emitted from one sequential unit of work (one simulated app, one
//! training phase), and recorded quantities must not depend on
//! scheduling (count *work*, never workers or chunks).
//!
//! # Zero-cost when disabled
//!
//! The crate is inert by default. Every recording function first does
//! one relaxed atomic load and returns; nothing is allocated, no
//! thread-local is touched, and callers need no `if` around
//! instrumentation. Enabling is an explicit API call from the binary
//! layer (never an environment read — the deterministic crates are
//! forbidden those), typically via `femux-bench`'s shared
//! `--metrics-out` / `--trace-out` flags.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub mod hist;
mod report;
mod sink;
pub mod span;
pub mod validate;
pub mod walltime;

pub use report::Report;
pub use sink::FlowPhase;

/// Serializes tests (across this crate's modules) that toggle the
/// process-global switches.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: std::sync::Mutex<()> =
    std::sync::Mutex::new(());

/// Master switch: when false, every recording call is a no-op.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Event recording switch (events cost memory; metrics alone are cheap).
static EVENTS: AtomicBool = AtomicBool::new(false);
/// Wall-clock profiling switch (waives determinism for `wall.*`).
static PROFILING: AtomicBool = AtomicBool::new(false);
/// Sequential namespace counter for repeated track families (see
/// [`next_track_epoch`]).
static TRACK_EPOCH: AtomicU64 = AtomicU64::new(0);

/// True when telemetry recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when trace-event recording is on (implies [`enabled`]).
#[inline]
pub fn events_enabled() -> bool {
    enabled() && EVENTS.load(Ordering::Relaxed)
}

/// True when wall-clock profiling is on (implies [`enabled`]).
#[inline]
pub fn profiling() -> bool {
    enabled() && PROFILING.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Turns trace-event recording on or off (no effect while disabled).
pub fn set_events(on: bool) {
    EVENTS.store(on, Ordering::Relaxed);
}

/// Turns wall-clock profiling on or off (no effect while disabled).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Adds `delta` to the counter `name`.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    sink::with_local(|s| s.add(name, delta));
}

/// Records `value` into the histogram `name`.
#[inline]
pub fn observe(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    sink::with_local(|s| s.observe(name, value));
}

/// Records a complete span on `track` at virtual time `ts_us` lasting
/// `dur_us` microseconds.
#[inline]
pub fn span(
    track: &str,
    cat: &'static str,
    name: &str,
    ts_us: u64,
    dur_us: u64,
    args: &[(&'static str, u64)],
) {
    if !events_enabled() {
        return;
    }
    sink::with_local(|s| {
        s.push_event(track, cat, name, ts_us, Some(dur_us), args)
    });
}

/// Records an instant event on `track` at virtual time `ts_us`.
#[inline]
pub fn instant(
    track: &str,
    cat: &'static str,
    name: &str,
    ts_us: u64,
    args: &[(&'static str, u64)],
) {
    if !events_enabled() {
        return;
    }
    sink::with_local(|s| s.push_event(track, cat, name, ts_us, None, args));
}

/// Records a flow event on `track` at virtual time `ts_us`. Flow events
/// (`s`/`t`/`f` phases) draw arrows in the Chrome trace viewer between
/// causally linked points on different tracks; all phases sharing `id`
/// form one flow. Emit the `Start` before any `Step`/`End` and never
/// reuse an id for a second `Start` — `obs_validate` rejects both.
#[inline]
pub fn flow(
    track: &str,
    cat: &'static str,
    name: &str,
    ts_us: u64,
    phase: FlowPhase,
    id: u64,
) {
    if !events_enabled() {
        return;
    }
    sink::with_local(|s| s.push_flow(track, cat, name, ts_us, phase, id));
}

/// Folds this thread's telemetry into the process-global sink now.
///
/// Every thread that records telemetry and whose completion is awaited
/// with anything weaker than `JoinHandle::join` (notably the scoped
/// workers of `femux-par`: `std::thread::scope` can return before TLS
/// destructors run) must call this as its last act, or a subsequent
/// [`collect`] may miss its contribution.
pub fn flush_thread() {
    sink::flush_local();
}

/// Returns the next track-namespace ordinal. Repeated experiment phases
/// that would otherwise reuse track names (e.g. the same app simulated
/// under several policies) prefix their tracks with this ordinal so
/// every track stays a single sequential emission unit. Must be called
/// from sequential coordination code (never inside a parallel section),
/// so the ordinal sequence itself is deterministic.
pub fn next_track_epoch() -> u64 {
    TRACK_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Drains all recorded telemetry into a [`Report`] and resets the
/// sinks (including the track-epoch counter, so consecutive collection
/// windows start from the same state). Call after parallel sections
/// have returned (the `femux-par` scoped workers are joined by then, so
/// their sinks have merged).
pub fn collect() -> Report {
    TRACK_EPOCH.store(0, Ordering::Relaxed);
    Report::from_sink(sink::drain_all())
}

/// Enables telemetry for a scope; restores the previous switches and
/// drains any leftover state on drop. Intended for tests and benches so
/// one test's telemetry can never leak into another's report.
#[must_use = "telemetry turns back off when the guard drops"]
pub struct ObsGuard {
    was_enabled: bool,
    was_events: bool,
    was_profiling: bool,
}

/// Enables recording (and optionally events) until the guard drops.
pub fn scoped(events: bool) -> ObsGuard {
    let guard = ObsGuard {
        was_enabled: ENABLED.swap(true, Ordering::Relaxed),
        was_events: EVENTS.swap(events, Ordering::Relaxed),
        was_profiling: PROFILING.load(Ordering::Relaxed),
    };
    drop(collect()); // Start from a clean slate.
    guard
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        drop(collect());
        ENABLED.store(self.was_enabled, Ordering::Relaxed);
        EVENTS.store(self.was_events, Ordering::Relaxed);
        PROFILING.store(self.was_profiling, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::OBS_TEST_LOCK as OBS_LOCK;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        set_enabled(false);
        counter_add("x", 1);
        observe("h", 1);
        instant("t", "c", "e", 0, &[]);
        let r = collect();
        assert!(r.counters.is_empty());
        assert!(r.hists.is_empty());
        assert!(r.events.is_empty());
    }

    #[test]
    fn events_off_still_records_metrics() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let _g = scoped(false);
        counter_add("c", 2);
        span("t", "cat", "s", 0, 1, &[]);
        let r = collect();
        assert_eq!(r.counters.get("c"), Some(&2));
        assert!(r.events.is_empty(), "events gated separately");
    }

    #[test]
    fn collect_resets_state() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let _g = scoped(true);
        counter_add("once", 1);
        assert_eq!(collect().counters.get("once"), Some(&1));
        assert!(collect().counters.is_empty());
    }

    #[test]
    fn worker_thread_sinks_merge_into_collect() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let _g = scoped(true);
        counter_add("n", 1);
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    counter_add("n", 1);
                    observe("h", 10 * (i + 1));
                    instant(&format!("worker-{i}"), "test", "tick", i, &[]);
                    flush_thread();
                });
            }
        });
        let r = collect();
        assert_eq!(r.counters.get("n"), Some(&5));
        assert_eq!(r.hists.get("h").map(|h| h.count), Some(4));
        assert_eq!(r.events.len(), 4);
        // Export order is by track name, not by merge order.
        let tracks: Vec<&str> =
            r.events.iter().map(|e| e.track.as_str()).collect();
        assert_eq!(tracks, vec!["worker-0", "worker-1", "worker-2", "worker-3"]);
    }

    #[test]
    fn merged_report_is_byte_identical_across_thread_layouts() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let run = |workers: usize| {
            let _g = scoped(true);
            let items: Vec<u64> = (0..32).collect();
            // Emulate a parallel section: each item is one sequential
            // unit of work owning its own track.
            std::thread::scope(|scope| {
                for chunk in items.chunks(items.len().div_ceil(workers)) {
                    scope.spawn(move || {
                        for &i in chunk {
                            counter_add("items", 1);
                            observe("value", i);
                            span(
                                &format!("unit-{i:02}"),
                                "test",
                                "work",
                                i * 10,
                                5,
                                &[("i", i)],
                            );
                        }
                        flush_thread();
                    });
                }
            });
            let r = collect();
            (r.metrics_json(), r.chrome_trace_json())
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn profiling_gates_wall_metrics() {
        let _lock = OBS_LOCK.lock().expect("obs test lock");
        let _g = scoped(false);
        let t0 = walltime::monotonic_micros();
        walltime::record_elapsed("wall.test_us", t0);
        assert!(collect().hists.is_empty(), "profiling off: no wall metrics");
        set_profiling(true);
        walltime::record_elapsed("wall.test_us", t0);
        let r = collect();
        set_profiling(false);
        #[cfg(feature = "walltime")]
        assert_eq!(r.hists.get("wall.test_us").map(|h| h.count), Some(1));
        #[cfg(not(feature = "walltime"))]
        assert_eq!(r.hists.get("wall.test_us").map(|h| h.count), Some(1));
    }
}

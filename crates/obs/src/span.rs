//! Causal lifecycle spans: per-invocation latency attribution.
//!
//! The aggregate layer (counters, histograms) answers *how much* delay a
//! fleet paid; this module answers *which* invocation paid it and *which*
//! scaling decision caused it. The engine samples invocations with a
//! deterministic seeded hash keyed on `(app, invocation_index)`
//! ([`SpanSampler`]), and for each sampled invocation records an
//! [`InvocationSpan`]: the arrival time, the wait split into queue vs
//! cold segments, the execution time, and a [`WaitCause`] naming the
//! pod or policy decision responsible.
//!
//! # Exact accounting
//!
//! The span segments are integer milliseconds taken from the same
//! variables the engine bills, and the derived delay uses the engine's
//! exact rounding op: [`InvocationSpan::delay_secs`] computes
//! `(queue_wait_ms + cold_wait_ms) as f64 / 1_000.0`, which must equal
//! the engine's `delays_secs` entry for that invocation *bitwise*. The
//! oracle reference simulator derives spans independently and the diff
//! layer compares them field-for-field.
//!
//! # Rate 0 is the no-op
//!
//! [`SpanSampler::new`] returns `None` for a non-positive rate, and the
//! engine keeps no sampler in that case — the run takes the exact same
//! branches as one with the span layer absent, so output is
//! byte-identical. This is the "compiled-out" contract: turning the
//! layer off is not "sample nothing", it is "never look".
//!
//! # Guarded emission
//!
//! Trace-event emission for spans goes through [`SpanGuard`], whose
//! `Drop` closes the span. Deterministic crates must not call the raw
//! [`open_span`]/[`close_span`] pair directly — a panic or early return
//! between the two would leak an open span and desynchronize per-track
//! sequences. The `contract-impl` audit rule enforces this.

use std::sync::atomic::{AtomicU64, Ordering};

/// Span-layer configuration carried in `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanConfig {
    /// Sampling rate in `[0, 1]`; non-positive disables the layer.
    pub rate: f64,
    /// Sampler seed; same seed + same workload ⇒ same sample set.
    pub seed: u64,
}

impl SpanConfig {
    /// Samples every invocation (tests, oracle cross-checks).
    pub fn all(seed: u64) -> Self {
        SpanConfig { rate: 1.0, seed }
    }
}

/// Deterministic invocation sampler: a seeded 64-bit mix of
/// `(app, invocation_index)` against a rate threshold. Stateless, so
/// the engine and the oracle agree on the sample set by construction.
#[derive(Debug, Clone, Copy)]
pub struct SpanSampler {
    seed: u64,
    threshold: u64,
}

impl SpanSampler {
    /// Builds a sampler, or `None` when the rate is non-positive (the
    /// span layer is then compiled out of the run entirely).
    pub fn new(cfg: &SpanConfig) -> Option<SpanSampler> {
        if cfg.rate.is_nan() || cfg.rate <= 0.0 {
            return None;
        }
        let rate = cfg.rate.min(1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Some(SpanSampler { seed: cfg.seed, threshold })
    }

    /// True when invocation `index` of `app` is in the sample.
    #[inline]
    pub fn sample(&self, app: u64, index: u64) -> bool {
        mix64(self.seed, app, index) <= self.threshold
    }
}

/// SplitMix64-style finalizer over the sampler key. Any fixed 64-bit
/// mixer works; what matters is that it is a pure function of
/// `(seed, app, index)` with no run-order dependence.
#[inline]
fn mix64(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Provenance of a pod: which decision brought it into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodOrigin {
    /// Part of the configured min-scale floor at simulation start.
    MinScale,
    /// Spawned reactively by admission at `at_ms` (an arrival found no
    /// capacity).
    Reactive {
        /// Virtual spawn time, ms.
        at_ms: u64,
    },
    /// Spawned proactively by the scaling policy's target at `at_ms`
    /// (keep-alive window, forecast, …).
    Proactive {
        /// Virtual spawn time, ms.
        at_ms: u64,
    },
    /// Respawned at `at_ms` on a surviving node after its previous
    /// incarnation was displaced by a node crash.
    Restarted {
        /// Virtual respawn time, ms.
        at_ms: u64,
    },
}

impl PodOrigin {
    /// Stable numeric code for trace-event args.
    pub fn code(&self) -> u64 {
        match self {
            PodOrigin::MinScale => 0,
            PodOrigin::Reactive { .. } => 1,
            PodOrigin::Proactive { .. } => 2,
            PodOrigin::Restarted { .. } => 3,
        }
    }
}

/// Why a sampled invocation waited (or did not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// Admitted on warm capacity: zero wait. The counts break the warm
    /// pool down by provenance at admission time, so "why was this
    /// free?" is answerable (min-scale floor vs earlier reactive spawn
    /// vs proactive policy decision).
    Warm {
        /// Warm pods owed to the min-scale floor.
        min_scale: u64,
        /// Warm pods spawned by earlier reactive admissions.
        reactive: u64,
        /// Warm pods spawned proactively by the policy.
        proactive: u64,
        /// Warm pods respawned after a node crash displaced them.
        restarted: u64,
    },
    /// Queued on a pod that was already warming: the wait is the
    /// remainder of a cold start some *earlier* decision started.
    JoinedWarmingPod {
        /// The pod joined.
        pod_uid: u64,
        /// Provenance of that pod (always a reactive spawn today —
        /// only admission-spawned pods are joinable — but recorded as
        /// the full origin so the trace stays self-describing).
        origin: PodOrigin,
    },
    /// No warm or warming capacity: admission spawned a fresh pod and
    /// this invocation paid its full cold start.
    FreshSpawn {
        /// The pod spawned on behalf of this arrival.
        pod_uid: u64,
    },
    /// The cluster had no room: admission evicted an idle warm pod
    /// (`victim_pod`, resident on `node`) to make space, and this
    /// invocation paid a full cold start on the replacement.
    Evicted {
        /// Node the victim was reclaimed from (and the replacement
        /// placed on).
        node: u64,
        /// The warm pod sacrificed to memory pressure.
        victim_pod: u64,
    },
    /// The cluster had no room *and* no evictable victim: the request
    /// ran overcommitted, paying a full cold start with no pod created.
    Saturated,
}

impl WaitCause {
    /// Stable numeric code for trace-event args: 0 warm, 1 join,
    /// 2 fresh spawn, 3 eviction, 4 saturated overcommit.
    pub fn code(&self) -> u64 {
        match self {
            WaitCause::Warm { .. } => 0,
            WaitCause::JoinedWarmingPod { .. } => 1,
            WaitCause::FreshSpawn { .. } => 2,
            WaitCause::Evicted { .. } => 3,
            WaitCause::Saturated => 4,
        }
    }
}

/// Full lifecycle record of one sampled invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationSpan {
    /// Numeric app id.
    pub app: u64,
    /// Invocation index within the app's replayed trace.
    pub index: u64,
    /// Arrival time, virtual ms.
    pub arrival_ms: u64,
    /// Time spent queued on an already-warming pod, ms.
    pub queue_wait_ms: u64,
    /// Cold-start latency paid on a fresh spawn, ms.
    pub cold_wait_ms: u64,
    /// Execution duration, ms.
    pub exec_ms: u64,
    /// Why the wait segments are what they are.
    pub cause: WaitCause,
}

impl InvocationSpan {
    /// Total delay in seconds, using the engine's exact rounding op
    /// (`delay_ms as f64 / 1_000.0`). Must equal the corresponding
    /// `delays_secs` entry bitwise — the exact-accounting contract.
    pub fn delay_secs(&self) -> f64 {
        (self.queue_wait_ms + self.cold_wait_ms) as f64 / 1_000.0
    }
}

// --- Ambient configuration -------------------------------------------------
//
// Deterministic crates never read the environment, so the bench/binary
// layer deposits the CLI-provided span config here and `femux-sim`'s
// fleet runner injects it into any `SimConfig` that does not already
// carry one (same pattern as the events switch). Stored as
// (rate bits, seed); rate bits of 0.0 means "unset".

static AMBIENT_RATE_BITS: AtomicU64 = AtomicU64::new(0);
static AMBIENT_SEED: AtomicU64 = AtomicU64::new(0);

/// Deposits (or clears) the process-ambient span config. Binary layer
/// only — deterministic crates receive the config via `SimConfig`.
pub fn set_ambient(cfg: Option<SpanConfig>) {
    match cfg {
        Some(c) => {
            AMBIENT_SEED.store(c.seed, Ordering::Relaxed);
            AMBIENT_RATE_BITS.store(c.rate.to_bits(), Ordering::Relaxed);
        }
        None => {
            AMBIENT_RATE_BITS.store(0, Ordering::Relaxed);
            AMBIENT_SEED.store(0, Ordering::Relaxed);
        }
    }
}

/// The ambient span config, if one with a positive rate is deposited.
pub fn ambient() -> Option<SpanConfig> {
    let rate = f64::from_bits(AMBIENT_RATE_BITS.load(Ordering::Relaxed));
    if rate > 0.0 {
        Some(SpanConfig { rate, seed: AMBIENT_SEED.load(Ordering::Relaxed) })
    } else {
        None
    }
}

// --- Guarded trace emission ------------------------------------------------

/// An open span: the half-state between [`open_span`] and
/// [`close_span`]. Opaque so call sites cannot forge one.
#[derive(Debug)]
pub struct OpenSpan {
    track: String,
    cat: &'static str,
    name: String,
    ts_us: u64,
}

/// Opens a span on `track` at `ts_us`. **Raw primitive** — outside
/// `femux-obs` every opening site must go through [`SpanGuard`], whose
/// `Drop` guarantees the matching close (audit rule `contract-impl`).
pub fn open_span(
    track: &str,
    cat: &'static str,
    name: &str,
    ts_us: u64,
) -> OpenSpan {
    OpenSpan {
        track: track.to_string(),
        cat,
        name: name.to_string(),
        ts_us,
    }
}

/// Closes `open` at `end_ts_us`, emitting the complete `X` event. Raw
/// primitive — see [`open_span`].
pub fn close_span(open: OpenSpan, end_ts_us: u64, args: &[(&'static str, u64)]) {
    crate::span(
        &open.track,
        open.cat,
        &open.name,
        open.ts_us,
        end_ts_us.saturating_sub(open.ts_us),
        args,
    );
}

/// Drop-guarded span: opens on construction, emits the complete event
/// when dropped. The only sanctioned way for deterministic crates to
/// record lifecycle spans — unwind-safe by construction.
#[must_use = "the span is emitted when the guard drops"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
    end_ts_us: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Opens a span (no-op guard when event recording is off).
    pub fn open(
        track: &str,
        cat: &'static str,
        name: &str,
        ts_us: u64,
    ) -> SpanGuard {
        let open = if crate::events_enabled() {
            Some(open_span(track, cat, name, ts_us))
        } else {
            None
        };
        SpanGuard { open, end_ts_us: ts_us, args: Vec::new() }
    }

    /// Sets the span's end timestamp (defaults to the open timestamp).
    pub fn end_at(&mut self, ts_us: u64) {
        self.end_ts_us = ts_us;
    }

    /// Attaches an integer argument.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.open.is_some() {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            close_span(open, self.end_ts_us, &self.args);
        }
    }
}

/// Stable flow-event id binding a request span to its causing pod's
/// spawn event: FNV-1a over the track name folded with the pod uid.
/// Track names embed the run epoch and app id, so ids stay unique
/// across apps and repeated experiment phases.
pub fn flow_id(track: &str, pod_uid: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in track.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= pod_uid;
    h.wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_and_negative_yield_no_sampler() {
        assert!(SpanSampler::new(&SpanConfig { rate: 0.0, seed: 7 }).is_none());
        assert!(SpanSampler::new(&SpanConfig { rate: -1.0, seed: 7 }).is_none());
        assert!(SpanSampler::new(&SpanConfig { rate: f64::NAN, seed: 7 })
            .is_none());
    }

    #[test]
    fn rate_one_samples_everything() {
        let s = SpanSampler::new(&SpanConfig::all(42)).expect("sampler");
        for app in 0..8 {
            for idx in 0..64 {
                assert!(s.sample(app, idx));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_keyed() {
        let cfg = SpanConfig { rate: 0.25, seed: 1234 };
        let a = SpanSampler::new(&cfg).expect("sampler");
        let b = SpanSampler::new(&cfg).expect("sampler");
        let picks = |s: &SpanSampler| -> Vec<bool> {
            (0..256).map(|i| s.sample(3, i)).collect()
        };
        assert_eq!(picks(&a), picks(&b), "same key, same sample set");
        let other = SpanSampler::new(&SpanConfig { rate: 0.25, seed: 99 })
            .expect("sampler");
        assert_ne!(picks(&a), picks(&other), "seed changes the sample set");
    }

    #[test]
    fn fractional_rate_hits_a_plausible_share() {
        let s = SpanSampler::new(&SpanConfig { rate: 0.25, seed: 5 })
            .expect("sampler");
        let hits = (0..10_000u64).filter(|&i| s.sample(17, i)).count();
        assert!(
            (1_500..3_500).contains(&hits),
            "rate 0.25 sampled {hits}/10000"
        );
    }

    #[test]
    fn delay_secs_uses_the_engine_rounding_op() {
        let span = InvocationSpan {
            app: 1,
            index: 0,
            arrival_ms: 10,
            queue_wait_ms: 333,
            cold_wait_ms: 475,
            exec_ms: 20,
            cause: WaitCause::FreshSpawn { pod_uid: 9 },
        };
        assert_eq!(span.delay_secs().to_bits(), (808f64 / 1_000.0).to_bits());
    }

    #[test]
    fn ambient_round_trips_and_clears() {
        set_ambient(Some(SpanConfig { rate: 0.5, seed: 77 }));
        assert_eq!(ambient(), Some(SpanConfig { rate: 0.5, seed: 77 }));
        set_ambient(None);
        assert_eq!(ambient(), None);
        set_ambient(Some(SpanConfig { rate: 0.0, seed: 77 }));
        assert_eq!(ambient(), None, "rate 0 is indistinguishable from unset");
    }

    #[test]
    fn flow_ids_separate_tracks_and_uids() {
        let a = flow_id("fleet-00/sim/kpa/app-00001", 3);
        let b = flow_id("fleet-00/sim/kpa/app-00002", 3);
        let c = flow_id("fleet-00/sim/kpa/app-00001", 4);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn guard_emits_one_complete_span() {
        let _lock = crate::OBS_TEST_LOCK.lock().expect("obs test lock");
        let _g = crate::scoped(true);
        {
            let mut span = SpanGuard::open("t", "span", "inv-0", 1_000);
            span.end_at(5_000);
            span.arg("cold_wait_ms", 4);
        }
        let r = crate::collect();
        assert_eq!(r.events.len(), 1);
        let e = &r.events[0];
        assert_eq!((e.ts_us, e.dur_us), (1_000, Some(4_000)));
        assert_eq!(e.args, vec![("cold_wait_ms", 4)]);
    }
}

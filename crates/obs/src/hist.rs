//! Fixed-bucket integer histograms.
//!
//! Buckets are powers of two by bit length: bucket 0 holds the value 0,
//! bucket `k` (1 ≤ k ≤ 64) holds `2^(k-1) ≤ v < 2^k`. Bucket boundaries
//! are a property of the *type*, never of the data, so merging two
//! histograms is a plain element-wise integer addition — commutative and
//! associative, which is what makes merged reports byte-identical at any
//! thread count. All state is integer (`sum` is `u128` so it cannot
//! saturate on microsecond-scale values); no float ever enters a merge.

/// Number of buckets: the zero bucket plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u128,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise its bit length.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`0` for bucket 0, `2^k - 1`
/// otherwise).
pub fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl Hist {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Merges another histogram into this one (commutative).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Bucket-resolution quantile: the upper bound of the first bucket
    /// whose cumulative count reaches `num/den` of the total, clamped to
    /// the observed maximum. Returns 0 for an empty histogram. Pure
    /// integer arithmetic, so the same data always reports the same
    /// quantile.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Ceiling of count * num / den, as a u128 to avoid overflow.
        let target = (self.count as u128 * num as u128)
            .div_ceil(den as u128)
            .max(1);
        let mut cum: u128 = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c as u128;
            if cum >= target {
                return bucket_upper(k).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_tracks_extrema_and_sum() {
        let mut h = Hist::default();
        for v in [0, 1, 7, 800, 800] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1608);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 800);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in [3, 9, 1000] {
            a.record(v);
        }
        for v in [0, 12, 77777] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 of 1..=100 lands in the bucket holding 50 (32..63).
        assert_eq!(h.quantile(50, 100), 63);
        // p99 clamps to the observed max.
        assert_eq!(h.quantile(99, 100), 100);
        assert_eq!(Hist::default().quantile(50, 100), 0);
    }
}

//! CLI: validate a Chrome trace-event JSON file produced with
//! `--trace-out` (shape, required fields, monotone timestamps per
//! track). Exits non-zero with the offending line on failure — the CI
//! observability job gates on this.

use femux_obs::validate::validate_chrome_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: obs_validate <trace.json>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_validate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_trace(&text) {
        Ok(summary) => {
            println!(
                "{path}: OK ({} events, {} flow events across {} tracks)",
                summary.events, summary.flows, summary.tracks
            );
        }
        Err(msg) => {
            eprintln!("{path}: INVALID: {msg}");
            std::process::exit(1);
        }
    }
}

//! CLI: answer "why did invocation N of app A wait X ms?" from a
//! Chrome trace produced with `--trace-out` and `--span-sample`.
//!
//! The span layer records one `cat == "span"` complete event per
//! sampled invocation, carrying exact wait segments and a causal
//! attribution (warm-pool provenance, the warming pod it joined, or
//! the pod it spawned). `lens` re-reads that trace — same line-oriented
//! parsing conventions as the validator, no JSON dependency — and
//! renders the causal story.
//!
//! Subcommands:
//!
//! - `lens explain <trace.json> --app A --inv N` — full lifecycle of
//!   one sampled invocation (`--first` picks the first span in the
//!   trace instead; handy for smoke tests).
//! - `lens list <trace.json> [--app A]` — one line per sampled span.
//! - `lens breakdown <trace.json>` — aggregate wait attribution:
//!   totals per segment and per cause, over all sampled spans.
//!
//! All output is derived from the trace in file order, so it is as
//! deterministic as the trace itself (byte-identical across
//! `FEMUX_THREADS`).

use std::collections::BTreeMap;

use femux_obs::validate::{field_str, field_u64};

/// One sampled invocation span, reassembled from a trace line.
#[derive(Debug, Clone)]
struct SpanRow {
    track: String,
    /// Numeric app id parsed from the track's `app-NNNNN` suffix.
    app: Option<u32>,
    index: u64,
    arrival_ms: u64,
    queue_wait_ms: u64,
    cold_wait_ms: u64,
    exec_ms: u64,
    /// 0 = warm, 1 = joined a warming pod, 2 = fresh spawn,
    /// 3 = evicted a victim, 4 = saturated overcommit.
    cause: u64,
    warm_mix: Option<(u64, u64, u64)>,
    /// Post-crash restarts in the warm mix (absent in pre-cluster
    /// traces).
    warm_restarted: Option<u64>,
    pod: Option<u64>,
    /// 0 = min-scale, 1 = reactive, 2 = proactive, 3 = restarted
    /// after a node crash.
    pod_origin: Option<u64>,
    pod_spawned_ms: Option<u64>,
    /// Cluster node of an eviction (cause 3).
    node: Option<u64>,
    /// Warm pod reclaimed to make room (cause 3).
    victim_pod: Option<u64>,
}

impl SpanRow {
    fn wait_ms(&self) -> u64 {
        self.queue_wait_ms + self.cold_wait_ms
    }

    fn cause_story(&self) -> String {
        match self.cause {
            0 => {
                let mix = self
                    .warm_mix
                    .map(|(m, r, p)| match self.warm_restarted {
                        Some(x) if x > 0 => format!(
                            " ({} min-scale, {} reactive, {} proactive, \
                             {} crash-restarted warm pods)",
                            m, r, p, x
                        ),
                        _ => format!(
                            " ({} min-scale, {} reactive, {} proactive \
                             warm pods)",
                            m, r, p
                        ),
                    })
                    .unwrap_or_default();
                format!("admitted on warm capacity{mix}")
            }
            1 => {
                let origin = match self.pod_origin {
                    Some(0) => " (a min-scale pod)".to_string(),
                    Some(1) => self
                        .pod_spawned_ms
                        .map(|t| {
                            format!(" (spawned reactively at t={t} ms)")
                        })
                        .unwrap_or_default(),
                    Some(2) => self
                        .pod_spawned_ms
                        .map(|t| {
                            format!(" (spawned proactively at t={t} ms)")
                        })
                        .unwrap_or_default(),
                    Some(3) => self
                        .pod_spawned_ms
                        .map(|t| {
                            format!(
                                " (restarted at t={t} ms after its \
                                 node crashed)"
                            )
                        })
                        .unwrap_or_default(),
                    _ => String::new(),
                };
                format!(
                    "queued on warming pod {}{origin}, paying its \
                     remaining warm-up",
                    self.pod
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "?".to_string()),
                )
            }
            3 => format!(
                "memory pressure: evicted idle warm pod {} from node {} \
                 to make room, then paid a full cold start on the \
                 replacement",
                self.victim_pod
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "?".to_string()),
                self.node
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "?".to_string()),
            ),
            4 => "cluster saturated with no evictable victim: ran \
                  overcommitted at the full cold penalty, no pod \
                  created"
                .to_string(),
            _ => format!(
                "cold start on freshly spawned pod {}",
                self.pod
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "?".to_string()),
            ),
        }
    }
}

/// Parses the `app-NNNNN` suffix of a sim track name.
fn app_of_track(track: &str) -> Option<u32> {
    let last = track.rsplit('/').next()?;
    last.strip_prefix("app-")?.parse().ok()
}

/// Extracts the thread-lane name from a `thread_name` metadata line
/// (the value inside `"args":{"name":...}`, not the event's own
/// `"name"` field).
fn thread_lane_name(line: &str) -> Option<&str> {
    let pat = "\"args\":{\"name\":\"";
    let start = line.find(pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Reads every sampled span from the trace, in file order.
fn parse_spans(text: &str) -> Result<Vec<SpanRow>, String> {
    let mut lane: BTreeMap<u64, String> = BTreeMap::new();
    let mut rows = Vec::new();
    for raw in text.lines() {
        let line = raw.trim_start_matches(',');
        if field_str(line, "ph") == Some("M")
            && field_str(line, "name") == Some("thread_name")
        {
            let (Some(tid), Some(name)) =
                (field_u64(line, "tid"), thread_lane_name(line))
            else {
                return Err(format!(
                    "malformed thread_name metadata: {line}"
                ));
            };
            lane.insert(tid, name.to_string());
            continue;
        }
        if field_str(line, "ph") != Some("X")
            || field_str(line, "cat") != Some("span")
        {
            continue;
        }
        let tid = field_u64(line, "tid")
            .ok_or_else(|| format!("span event without tid: {line}"))?;
        let track = lane
            .get(&tid)
            .ok_or_else(|| format!("span event on unnamed tid {tid}"))?
            .clone();
        let need = |key: &str| {
            field_u64(line, key).ok_or_else(|| {
                format!("span event missing \"{key}\": {line}")
            })
        };
        let ts_us = need("ts")?;
        let warm_mix = match (
            field_u64(line, "warm_min_scale"),
            field_u64(line, "warm_reactive"),
            field_u64(line, "warm_proactive"),
        ) {
            (Some(m), Some(r), Some(p)) => Some((m, r, p)),
            _ => None,
        };
        rows.push(SpanRow {
            app: app_of_track(&track),
            track,
            index: need("index")?,
            arrival_ms: ts_us / 1_000,
            queue_wait_ms: need("queue_wait_ms")?,
            cold_wait_ms: need("cold_wait_ms")?,
            exec_ms: need("exec_ms")?,
            cause: need("cause")?,
            warm_mix,
            warm_restarted: field_u64(line, "warm_restarted"),
            pod: field_u64(line, "pod"),
            pod_origin: field_u64(line, "pod_origin"),
            pod_spawned_ms: field_u64(line, "pod_spawned_ms"),
            node: field_u64(line, "node"),
            victim_pod: field_u64(line, "victim_pod"),
        });
    }
    Ok(rows)
}

fn explain(row: &SpanRow) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let app = row
        .app
        .map(|a| format!("app-{a:05}"))
        .unwrap_or_else(|| row.track.clone());
    let _ = writeln!(
        out,
        "invocation {} of {} waited {} ms",
        row.index,
        app,
        row.wait_ms()
    );
    let _ = writeln!(out, "  track    {}", row.track);
    let _ = writeln!(out, "  arrival  t={} ms", row.arrival_ms);
    let _ = writeln!(
        out,
        "  queue    {} ms (waiting on a pod already warming)",
        row.queue_wait_ms
    );
    let _ = writeln!(
        out,
        "  cold     {} ms (warm-up of a pod spawned for it)",
        row.cold_wait_ms
    );
    let _ = writeln!(out, "  exec     {} ms", row.exec_ms);
    let _ = writeln!(out, "  cause    {}", row.cause_story());
    out
}

fn list(rows: &[SpanRow], app: Option<u32>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for row in rows.iter().filter(|r| app.is_none() || r.app == app) {
        let _ = writeln!(
            out,
            "{} inv={} t={}ms queue={}ms cold={}ms exec={}ms cause={}",
            row.track,
            row.index,
            row.arrival_ms,
            row.queue_wait_ms,
            row.cold_wait_ms,
            row.exec_ms,
            match row.cause {
                0 => "warm",
                1 => "joined-warming",
                3 => "evicted",
                4 => "saturated",
                _ => "fresh-spawn",
            },
        );
    }
    out
}

fn breakdown(rows: &[SpanRow]) -> String {
    use std::fmt::Write as _;
    let (mut queue, mut cold, mut exec) = (0u64, 0u64, 0u64);
    let mut by_cause = [0u64; 5];
    for row in rows {
        queue += row.queue_wait_ms;
        cold += row.cold_wait_ms;
        exec += row.exec_ms;
        by_cause[(row.cause.min(4)) as usize] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "sampled spans: {}", rows.len());
    let _ = writeln!(out, "  queue wait total: {queue} ms");
    let _ = writeln!(out, "  cold wait total:  {cold} ms");
    let _ = writeln!(out, "  exec total:       {exec} ms");
    let _ = writeln!(
        out,
        "  causes: warm={} joined-warming={} fresh-spawn={} evicted={} \
         saturated={}",
        by_cause[0], by_cause[1], by_cause[2], by_cause[3], by_cause[4]
    );
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: lens explain <trace.json> (--app A --inv N | --first)\n\
         \x20      lens list <trace.json> [--app A]\n\
         \x20      lens breakdown <trace.json>"
    );
    std::process::exit(2);
}

/// Parses `--key value` / `--key=value` flags plus one positional path.
fn parse_cli(
    args: &[String],
) -> (Option<String>, BTreeMap<String, String>) {
    let mut path = None;
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(flag) = a.strip_prefix("--") {
            if let Some((k, v)) = flag.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
            } else if flag == "first" {
                flags.insert("first".to_string(), "1".to_string());
            } else if i + 1 < args.len() {
                i += 1;
                flags.insert(flag.to_string(), args[i].clone());
            } else {
                usage();
            }
        } else if path.is_none() {
            path = Some(a.clone());
        } else {
            usage();
        }
        i += 1;
    }
    (path, flags)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (path, flags) = parse_cli(&args[1..]);
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lens: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let rows = match parse_spans(&text) {
        Ok(rows) => rows,
        Err(msg) => {
            eprintln!("lens: {path}: {msg}");
            std::process::exit(1);
        }
    };
    match cmd.as_str() {
        "explain" => {
            let row = if flags.contains_key("first") {
                rows.first()
            } else {
                let (Some(app), Some(inv)) = (
                    flags.get("app").and_then(|v| v.parse::<u32>().ok()),
                    flags.get("inv").and_then(|v| v.parse::<u64>().ok()),
                ) else {
                    usage()
                };
                rows.iter()
                    .find(|r| r.app == Some(app) && r.index == inv)
            };
            match row {
                Some(row) => print!("{}", explain(row)),
                None => {
                    eprintln!(
                        "lens: no sampled span matches (is the \
                         invocation in the sample? try `lens list`)"
                    );
                    std::process::exit(1);
                }
            }
        }
        "list" => {
            let app = flags.get("app").and_then(|v| v.parse().ok());
            print!("{}", list(&rows, app));
        }
        "breakdown" => print!("{}", breakdown(&rows)),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        [
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"femux\"}}",
            ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"sim/fleet-00/app-00042\"}}",
            ",\n{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":5000000,\"id\":7,\"cat\":\"span\",\"name\":\"pod-spawn\"}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5000000,\"dur\":3308000,\"cat\":\"span\",\"name\":\"inv-3\",\"args\":{\"index\":3,\"queue_wait_ms\":0,\"cold_wait_ms\":808,\"exec_ms\":2500,\"cause\":2,\"pod\":7}}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9000000,\"dur\":400000,\"cat\":\"span\",\"name\":\"inv-5\",\"args\":{\"index\":5,\"queue_wait_ms\":0,\"cold_wait_ms\":0,\"exec_ms\":400,\"cause\":0,\"warm_min_scale\":1,\"warm_reactive\":2,\"warm_proactive\":0}}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9100000,\"dur\":900000,\"cat\":\"span\",\"name\":\"inv-6\",\"args\":{\"index\":6,\"queue_wait_ms\":500,\"cold_wait_ms\":0,\"exec_ms\":400,\"cause\":1,\"pod\":9,\"pod_origin\":1,\"pod_spawned_ms\":8800}}",
            ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":9500000,\"s\":\"t\",\"cat\":\"fault\",\"name\":\"node-crash\",\"args\":{\"node\":1,\"pods\":2}}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9600000,\"dur\":1208000,\"cat\":\"span\",\"name\":\"inv-7\",\"args\":{\"index\":7,\"queue_wait_ms\":0,\"cold_wait_ms\":808,\"exec_ms\":400,\"cause\":3,\"node\":0,\"victim_pod\":4}}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9700000,\"dur\":1208000,\"cat\":\"span\",\"name\":\"inv-8\",\"args\":{\"index\":8,\"queue_wait_ms\":0,\"cold_wait_ms\":808,\"exec_ms\":400,\"cause\":4}}",
            ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9800000,\"dur\":700000,\"cat\":\"span\",\"name\":\"inv-9\",\"args\":{\"index\":9,\"queue_wait_ms\":300,\"cold_wait_ms\":0,\"exec_ms\":400,\"cause\":1,\"pod\":11,\"pod_origin\":3,\"pod_spawned_ms\":9500}}",
            "\n]}",
        ]
        .join("")
    }

    #[test]
    fn parses_spans_with_track_and_app() {
        let rows = parse_spans(&sample_trace()).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].app, Some(42));
        assert_eq!(rows[0].track, "sim/fleet-00/app-00042");
        assert_eq!(rows[0].index, 3);
        assert_eq!(rows[0].arrival_ms, 5_000);
        assert_eq!(rows[0].cold_wait_ms, 808);
        assert_eq!(rows[0].cause, 2);
        assert_eq!(rows[1].warm_mix, Some((1, 2, 0)));
        assert_eq!(rows[2].pod_spawned_ms, Some(8_800));
    }

    #[test]
    fn explain_tells_the_fresh_spawn_story() {
        let rows = parse_spans(&sample_trace()).unwrap();
        let text = explain(&rows[0]);
        assert!(text.contains("invocation 3 of app-00042 waited 808 ms"));
        assert!(text.contains("cold     808 ms"));
        assert!(text.contains("freshly spawned pod 7"));
    }

    #[test]
    fn explain_tells_the_warm_and_join_stories() {
        let rows = parse_spans(&sample_trace()).unwrap();
        let warm = explain(&rows[1]);
        assert!(warm.contains("waited 0 ms"));
        assert!(warm.contains(
            "1 min-scale, 2 reactive, 0 proactive warm pods"
        ));
        let joined = explain(&rows[2]);
        assert!(joined.contains("queued on warming pod 9"));
        assert!(joined.contains("spawned reactively at t=8800 ms"));
    }

    #[test]
    fn explain_tells_the_cluster_pressure_stories() {
        let rows = parse_spans(&sample_trace()).unwrap();
        let evicted = explain(&rows[3]);
        assert!(evicted.contains("evicted idle warm pod 4 from node 0"));
        assert!(evicted.contains("full cold start"));
        let saturated = explain(&rows[4]);
        assert!(saturated.contains("no evictable victim"));
        assert!(saturated.contains("overcommitted"));
        assert!(saturated.contains("no pod"));
    }

    #[test]
    fn explain_narrates_the_node_crash_restart_chain() {
        let rows = parse_spans(&sample_trace()).unwrap();
        let restarted = explain(&rows[5]);
        assert!(restarted.contains("queued on warming pod 11"));
        assert!(restarted
            .contains("restarted at t=9500 ms after its node crashed"));
    }

    #[test]
    fn list_filters_by_app_and_breakdown_totals() {
        let rows = parse_spans(&sample_trace()).unwrap();
        assert_eq!(list(&rows, Some(42)).lines().count(), 6);
        assert_eq!(list(&rows, Some(43)).lines().count(), 0);
        let listed = list(&rows, None);
        assert!(listed.contains("cause=evicted"));
        assert!(listed.contains("cause=saturated"));
        let b = breakdown(&rows);
        assert!(b.contains("sampled spans: 6"));
        assert!(b.contains("queue wait total: 800 ms"));
        assert!(b.contains("cold wait total:  2424 ms"));
        assert!(b.contains(
            "warm=1 joined-warming=2 fresh-spawn=1 evicted=1 saturated=1"
        ));
    }

    #[test]
    fn cli_flags_accept_both_forms() {
        let args: Vec<String> =
            ["t.json", "--app", "42", "--inv=3", "--first"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let (path, flags) = parse_cli(&args);
        assert_eq!(path.as_deref(), Some("t.json"));
        assert_eq!(flags.get("app").map(String::as_str), Some("42"));
        assert_eq!(flags.get("inv").map(String::as_str), Some("3"));
        assert!(flags.contains_key("first"));
    }

    #[test]
    fn unnamed_tid_is_an_error() {
        let bad = "{\"ph\":\"X\",\"pid\":1,\"tid\":4,\"ts\":1,\"dur\":1,\
                   \"cat\":\"span\",\"name\":\"inv-0\",\
                   \"args\":{\"index\":0}}";
        let err = parse_spans(bad).unwrap_err();
        assert!(err.contains("unnamed tid 4"));
    }
}

//! The single sanctioned wall-clock site of the deterministic crates.
//!
//! Wall-clock time is inherently nondeterministic, so it is quarantined
//! here behind the `walltime` cargo feature (default on) and two rules:
//!
//! - values derived from this module may only feed *diagnostics* —
//!   `TrainStats` timings, `wall.*` metrics — never labels, features,
//!   model state, or simulated outcomes;
//! - `wall.*` metrics are recorded only while profiling is switched on
//!   ([`crate::set_profiling`]), which explicitly waives the
//!   byte-identical-report guarantee for them.
//!
//! `femux-audit`'s `no-wallclock-entropy` rule carves exactly this file
//! out; an `Instant` anywhere else in a deterministic crate is still a
//! finding. With the feature disabled every function here returns 0 and
//! the crate contains no clock read at all.

#[cfg(feature = "walltime")]
use std::sync::OnceLock;
#[cfg(feature = "walltime")]
use std::time::Instant;

#[cfg(feature = "walltime")]
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Microseconds of monotonic wall time since the first call in this
/// process. Returns 0 when the `walltime` feature is disabled.
#[cfg(feature = "walltime")]
pub fn monotonic_micros() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Microseconds of monotonic wall time since the first call in this
/// process. Returns 0 when the `walltime` feature is disabled.
#[cfg(not(feature = "walltime"))]
pub fn monotonic_micros() -> u64 {
    0
}

/// Seconds elapsed since a [`monotonic_micros`] reading (0 with the
/// feature disabled — diagnostics degrade to zero, nothing breaks).
pub fn elapsed_secs(start_us: u64) -> f64 {
    monotonic_micros().saturating_sub(start_us) as f64 / 1_000_000.0
}

/// Records the wall time since `start_us` into the `wall.*` histogram
/// `name` — only while profiling is on, because wall durations are not
/// reproducible and must never reach the deterministic report surface
/// by default.
pub fn record_elapsed(name: &str, start_us: u64) {
    if crate::profiling() {
        crate::observe(name, monotonic_micros().saturating_sub(start_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_decreases() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
    }

    #[test]
    fn elapsed_secs_is_nonnegative() {
        let t0 = monotonic_micros();
        assert!(elapsed_secs(t0) >= 0.0);
        // A start in the (artificial) future saturates to zero.
        assert_eq!(elapsed_secs(u64::MAX), 0.0);
    }
}

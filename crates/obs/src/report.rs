//! Collected telemetry and its two exporters.
//!
//! - [`Report::metrics_json`]: a flat JSON document with sorted keys —
//!   one `counters` object, one `histograms` object (count/sum/min/max
//!   plus bucket-resolution p50/p90/p99), and the trace-event count.
//! - [`Report::chrome_trace_json`]: Chrome `chrome://tracing` /
//!   Perfetto trace-event JSON. Each track becomes a named thread lane;
//!   events are emitted one per line (the validator and diffs rely on
//!   that), ordered by `(track, seq)` so the same run always serializes
//!   to the same bytes.
//!
//! Everything that reaches these exporters is integer-valued, so no
//! float formatting — the classic source of platform-dependent output —
//! is involved anywhere.

use std::collections::BTreeMap;

use crate::sink::{Event, Sink};

/// A merged, ordered snapshot of all recorded telemetry.
#[derive(Debug, Default)]
pub struct Report {
    /// Monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, sorted by name.
    pub hists: BTreeMap<String, crate::hist::Hist>,
    /// Trace events, sorted by `(track, seq)`.
    pub events: Vec<Event>,
}

impl Report {
    pub(crate) fn from_sink(sink: Sink) -> Report {
        let mut events = sink.events;
        events.sort_by(|a, b| {
            (&a.track, a.seq, a.ts_us, &a.name).cmp(&(
                &b.track,
                b.seq,
                b.ts_us,
                &b.name,
            ))
        });
        Report {
            counters: sink.counters,
            hists: sink.hists,
            events,
        }
    }

    /// Flat sorted-key JSON metrics document (schema v2: the `schema`
    /// marker arrived together with the span layer).
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"femux-obs-metrics/v2\",");
        out.push_str("\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_str_json(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_str_json(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile(50, 100),
                h.quantile(90, 100),
                h.quantile(99, 100),
            ));
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "}},\n  \"trace_events\": {}\n}}\n",
            self.events.len()
        ));
        out
    }

    /// Chrome trace-event JSON, one event per line.
    pub fn chrome_trace_json(&self) -> String {
        // Stable lane numbering: sorted distinct track names.
        let mut tracks: Vec<&str> =
            self.events.iter().map(|e| e.track.as_str()).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let tid_of: BTreeMap<&str, usize> = tracks
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i + 1))
            .collect();

        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"femux\"}}",
        );
        for (&track, &tid) in &tid_of {
            out.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":"
            ));
            push_str_json(&mut out, track);
            out.push_str("}}");
        }
        for e in &self.events {
            let tid = tid_of[e.track.as_str()];
            out.push_str(",\n{");
            match (e.flow, e.dur_us) {
                (Some((phase, id)), _) => out.push_str(&format!(
                    "\"ph\":\"{}\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{},\"id\":{id},",
                    phase.ph(),
                    e.ts_us
                )),
                (None, Some(dur)) => out.push_str(&format!(
                    "\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{},\"dur\":{dur},",
                    e.ts_us
                )),
                (None, None) => out.push_str(&format!(
                    "\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{},\"s\":\"t\",",
                    e.ts_us
                )),
            }
            out.push_str(&format!("\"cat\":\"{}\",\"name\":", e.cat));
            push_str_json(&mut out, &e.name);
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// JSON-lines table of the recorded lifecycle spans (events with
    /// category `span`), in `(track, seq)` order — the `--span-out`
    /// artifact. One self-contained object per line so downstream
    /// tooling can stream it.
    pub fn span_table_json(&self) -> String {
        let mut out = String::new();
        for e in self.events.iter().filter(|e| e.cat == "span") {
            out.push_str("{\"track\":");
            push_str_json(&mut out, &e.track);
            out.push_str(",\"name\":");
            push_str_json(&mut out, &e.name);
            out.push_str(&format!(
                ",\"ts_us\":{},\"dur_us\":{}",
                e.ts_us,
                e.dur_us.unwrap_or(0)
            ));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Appends a JSON string literal (quotes + escapes).
fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut s = Sink::default();
        s.add("b.count", 2);
        s.add("a.count", 1);
        s.observe("lat_ms", 7);
        s.observe("lat_ms", 900);
        s.push_event("track-b", "sim", "later", 50, Some(10), &[]);
        s.push_event("track-a", "sim", "first", 5, None, &[("n", 3)]);
        s.push_event("track-a", "sim", "second", 9, Some(2), &[]);
        Report::from_sink(s)
    }

    #[test]
    fn metrics_json_has_sorted_keys_and_integer_stats() {
        let j = sample_report().metrics_json();
        let a = j.find("a.count").expect("a.count present");
        let b = j.find("b.count").expect("b.count present");
        assert!(a < b, "keys sorted");
        assert!(j.contains("\"count\": 2, \"sum\": 907, \"min\": 7"));
        assert!(j.contains("\"trace_events\": 3"));
    }

    #[test]
    fn chrome_trace_orders_by_track_then_seq() {
        let t = sample_report().chrome_trace_json();
        let first = t.find("\"first\"").expect("instant present");
        let second = t.find("\"second\"").expect("span present");
        let later = t.find("\"later\"").expect("other track present");
        assert!(first < second && second < later);
        assert!(t.contains("\"thread_name\""));
        assert!(t.ends_with("]}\n"));
        // One event per line: every line after the first is an object.
        for line in t.lines().skip(1).take_while(|l| *l != "]}") {
            assert!(line.starts_with('{') || line.starts_with(",\n"));
        }
    }

    #[test]
    fn string_escaping_is_json_safe() {
        let mut out = String::new();
        push_str_json(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn metrics_json_carries_the_v2_schema_marker() {
        let j = sample_report().metrics_json();
        assert!(j.contains("\"schema\": \"femux-obs-metrics/v2\""));
    }

    #[test]
    fn flow_events_render_phase_and_id() {
        use crate::sink::FlowPhase;
        let mut s = Sink::default();
        s.push_flow("t", "span", "pod-spawn", 100, FlowPhase::Start, 42);
        s.push_flow("t", "span", "join", 250, FlowPhase::Step, 42);
        let t = Report::from_sink(s).chrome_trace_json();
        assert!(t.contains("\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":100,\"id\":42,"));
        assert!(t.contains("\"ph\":\"t\",\"pid\":1,\"tid\":1,\"ts\":250,\"id\":42,"));
    }

    #[test]
    fn span_table_lists_only_span_category_events() {
        let mut s = Sink::default();
        s.push_event("t", "sim", "cold-start", 5, Some(3), &[]);
        s.push_event("t", "span", "inv-0", 10, Some(7), &[("exec_ms", 2)]);
        let table = Report::from_sink(s).span_table_json();
        assert_eq!(
            table,
            "{\"track\":\"t\",\"name\":\"inv-0\",\"ts_us\":10,\
             \"dur_us\":7,\"args\":{\"exec_ms\":2}}\n"
        );
    }
}

//! Structural validation of exported Chrome trace-event JSON.
//!
//! The exporter writes one event per line precisely so this check (and
//! CI) can stay dependency-free: each line is scanned for balanced
//! structure and the few fields the trace-event format requires, and
//! timestamps are checked to be monotone per lane — the property the
//! per-track sequence ordering is supposed to guarantee.

/// Summary of a structurally valid trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of `X`/`i` payload events.
    pub events: usize,
    /// Number of distinct lanes (`tid`s) carrying payload events.
    pub tracks: usize,
    /// Number of `s`/`t`/`f` flow events.
    pub flows: usize,
}

/// Validates trace-event JSON produced by
/// [`crate::Report::chrome_trace_json`]. Returns a summary, or a
/// message naming the first offending line.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "{\"traceEvents\":[")) => {}
        other => {
            return Err(format!(
                "line 1: expected `{{\"traceEvents\":[`, got {:?}",
                other.map(|(_, l)| l)
            ))
        }
    }
    let mut events = 0usize;
    let mut flows = 0usize;
    let mut last_ts: std::collections::BTreeMap<u64, u64> =
        std::collections::BTreeMap::new();
    // Flow-id lifecycle per (cat, id): `false` = started, `true` =
    // terminated by an `f` phase.
    let mut flow_state: std::collections::BTreeMap<(String, u64), bool> =
        std::collections::BTreeMap::new();
    let mut closed = false;
    for (i, raw) in lines {
        let n = i + 1;
        if raw == "]}" {
            closed = true;
            continue;
        }
        if closed {
            if !raw.trim().is_empty() {
                return Err(format!("line {n}: content after `]}}`"));
            }
            continue;
        }
        let line = raw.strip_suffix(',').unwrap_or(raw);
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {n}: not a JSON object"));
        }
        if !balanced(line) {
            return Err(format!("line {n}: unbalanced braces or quotes"));
        }
        let ph = field_str(line, "ph")
            .ok_or_else(|| format!("line {n}: missing \"ph\""))?;
        let tid = field_u64(line, "tid")
            .ok_or_else(|| format!("line {n}: missing \"tid\""))?;
        match ph {
            "M" => {}
            "X" | "i" => {
                let ts = field_u64(line, "ts")
                    .ok_or_else(|| format!("line {n}: missing \"ts\""))?;
                if ph == "X" && field_u64(line, "dur").is_none() {
                    return Err(format!("line {n}: X event without dur"));
                }
                if field_str(line, "name").is_none() {
                    return Err(format!("line {n}: missing \"name\""));
                }
                check_monotone(&mut last_ts, tid, ts, n)?;
                events += 1;
            }
            "s" | "t" | "f" => {
                let ts = field_u64(line, "ts")
                    .ok_or_else(|| format!("line {n}: missing \"ts\""))?;
                let id = field_u64(line, "id").ok_or_else(|| {
                    format!("line {n}: flow event without \"id\"")
                })?;
                if field_str(line, "name").is_none() {
                    return Err(format!("line {n}: missing \"name\""));
                }
                check_monotone(&mut last_ts, tid, ts, n)?;
                let key = (
                    field_str(line, "cat").unwrap_or("").to_string(),
                    id,
                );
                match (ph, flow_state.get(&key)) {
                    ("s", None) => {
                        flow_state.insert(key, false);
                    }
                    ("s", Some(_)) => {
                        return Err(format!(
                            "line {n}: duplicate flow start for id {id} \
                             (flow ids must be unique per cat)"
                        ));
                    }
                    ("t" | "f", None) => {
                        return Err(format!(
                            "line {n}: flow {ph:?} for id {id} without a \
                             preceding start"
                        ));
                    }
                    (_, Some(true)) => {
                        return Err(format!(
                            "line {n}: flow {ph:?} for id {id} after the \
                             flow already ended"
                        ));
                    }
                    ("f", Some(false)) => {
                        flow_state.insert(key, true);
                    }
                    ("t", Some(false)) => {}
                    (other, state) => {
                        return Err(format!(
                            "line {n}: flow phase {other:?} in state \
                             {state:?} for id {id}"
                        ));
                    }
                }
                flows += 1;
            }
            other => {
                return Err(format!("line {n}: unknown ph {other:?}"))
            }
        }
    }
    if !closed {
        return Err("missing closing `]}`".to_string());
    }
    Ok(TraceSummary {
        events,
        tracks: last_ts.len(),
        flows,
    })
}

/// Enforces per-lane timestamp monotonicity (equal timestamps allowed).
fn check_monotone(
    last_ts: &mut std::collections::BTreeMap<u64, u64>,
    tid: u64,
    ts: u64,
    n: usize,
) -> Result<(), String> {
    if let Some(&prev) = last_ts.get(&tid) {
        if ts < prev {
            return Err(format!(
                "line {n}: ts {ts} < {prev} on tid {tid} \
                 (timestamps must be monotone per track)"
            ));
        }
    }
    last_ts.insert(tid, ts);
    Ok(())
}

/// Checks brace balance outside string literals.
fn balanced(line: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
    }
    depth == 0 && !in_str
}

/// Extracts a top-level-ish string field value (no unescaping — exporter
/// field values that matter here are plain). Public so trace consumers
/// (the `lens` bin) can share the parsing conventions.
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts an unsigned integer field value.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_trace() -> String {
        [
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"femux\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"app-00001\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000,\"dur\":808,\"cat\":\"sim\",\"name\":\"cold-start\"},",
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":60000,\"s\":\"t\",\"cat\":\"sim\",\"name\":\"scale-up\",\"args\":{\"to\":2}}",
            "]}",
        ]
        .join("\n")
    }

    fn flow_trace() -> String {
        [
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"femux\"}},",
            "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":100,\"id\":7,\"cat\":\"span\",\"name\":\"pod-spawn\"},",
            "{\"ph\":\"t\",\"pid\":1,\"tid\":2,\"ts\":150,\"id\":7,\"cat\":\"span\",\"name\":\"join\"},",
            "{\"ph\":\"f\",\"pid\":1,\"tid\":2,\"ts\":900,\"id\":7,\"cat\":\"span\",\"name\":\"warm\"}",
            "]}",
        ]
        .join("\n")
    }

    #[test]
    fn accepts_well_formed_trace() {
        let s = validate_chrome_trace(&valid_trace()).expect("valid");
        assert_eq!(s, TraceSummary { events: 2, tracks: 1, flows: 0 });
    }

    #[test]
    fn accepts_well_formed_flows() {
        let s = validate_chrome_trace(&flow_trace()).expect("valid");
        assert_eq!(s, TraceSummary { events: 0, tracks: 2, flows: 3 });
    }

    #[test]
    fn rejects_duplicate_flow_start_ids() {
        let bad = flow_trace().replace(
            "{\"ph\":\"t\",\"pid\":1,\"tid\":2,\"ts\":150,\"id\":7,\"cat\":\"span\",\"name\":\"join\"},",
            "{\"ph\":\"s\",\"pid\":1,\"tid\":2,\"ts\":150,\"id\":7,\"cat\":\"span\",\"name\":\"join\"},",
        );
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("duplicate flow start"), "{err}");
    }

    #[test]
    fn rejects_flow_step_without_start() {
        let bad = flow_trace().replace("\"id\":7,\"cat\":\"span\",\"name\":\"pod-spawn\"", "\"id\":8,\"cat\":\"span\",\"name\":\"pod-spawn\"");
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("without a"), "{err}");
    }

    #[test]
    fn rejects_flow_continuing_after_end() {
        let bad = flow_trace().replace(
            "{\"ph\":\"t\",\"pid\":1,\"tid\":2,\"ts\":150,\"id\":7,\"cat\":\"span\",\"name\":\"join\"},",
            "{\"ph\":\"f\",\"pid\":1,\"tid\":2,\"ts\":150,\"id\":7,\"cat\":\"span\",\"name\":\"join\"},",
        );
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("already ended"), "{err}");
    }

    #[test]
    fn rejects_flow_without_id() {
        let bad = flow_trace().replace("\"id\":7,\"cat\":\"span\",\"name\":\"pod-spawn\"", "\"cat\":\"span\",\"name\":\"pod-spawn\"");
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("without \"id\""), "{err}");
    }

    #[test]
    fn flow_events_join_the_monotone_timestamp_check() {
        let bad = flow_trace().replace(
            "{\"ph\":\"f\",\"pid\":1,\"tid\":2,\"ts\":900,",
            "{\"ph\":\"f\",\"pid\":1,\"tid\":2,\"ts\":120,",
        );
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_backwards_timestamps() {
        let bad = valid_trace().replace("\"ts\":60000", "\"ts\":10");
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_and_truncated_input() {
        let bad = valid_trace().replace(
            "\"name\":\"cold-start\"}",
            "\"name\":\"cold-start\"",
        );
        assert!(validate_chrome_trace(&bad).is_err());
        let truncated: String = valid_trace()
            .lines()
            .take(4)
            .collect::<Vec<_>>()
            .join("\n");
        let err =
            validate_chrome_trace(&truncated).expect_err("must fail");
        assert!(err.contains("]}"), "{err}");
    }

    #[test]
    fn rejects_span_without_duration() {
        let bad = valid_trace().replace("\"dur\":808,", "");
        let err = validate_chrome_trace(&bad).expect_err("must fail");
        assert!(err.contains("without dur"), "{err}");
    }

    #[test]
    fn exporter_output_round_trips() {
        let mut s = crate::sink::Sink::default();
        s.push_event("a", "c", "e1", 1, Some(4), &[("k", 1)]);
        s.push_event("a", "c", "e2", 8, None, &[]);
        s.push_event("b", "c", "e3", 2, Some(1), &[]);
        let text = crate::Report::from_sink(s).chrome_trace_json();
        let sum = validate_chrome_trace(&text).expect("exporter output valid");
        assert_eq!(sum, TraceSummary { events: 3, tracks: 2, flows: 0 });
    }

    #[test]
    fn exporter_flow_output_round_trips() {
        use crate::sink::FlowPhase;
        let mut s = crate::sink::Sink::default();
        s.push_flow("pods", "span", "pod-spawn", 10, FlowPhase::Start, 99);
        s.push_event("reqs", "span", "inv-3", 12, Some(5), &[]);
        s.push_flow("reqs", "span", "join", 12, FlowPhase::Step, 99);
        let text = crate::Report::from_sink(s).chrome_trace_json();
        let sum = validate_chrome_trace(&text).expect("exporter output valid");
        assert_eq!(sum, TraceSummary { events: 1, tracks: 2, flows: 2 });
    }
}

//! Per-thread telemetry sinks and their deterministic merge.
//!
//! Every thread records into its own thread-local [`Sink`] — no locks on
//! the hot path. When a thread exits (the scoped workers of `femux-par`
//! are joined before the parallel section returns), the sink's `Drop`
//! folds its contents into a process-global sink under a mutex. Counter
//! and histogram merges are commutative integer additions, so the merge
//! order — which depends on scheduling — cannot influence the collected
//! totals. Trace events carry a per-track sequence number assigned at
//! emission; the exporter orders by `(track, seq)`, which restores a
//! unique deterministic order as long as each track is only ever emitted
//! from one sequential unit of work (one simulated app, one k-means
//! restart, …) — the crate's tracking contract.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use crate::hist::Hist;

/// Phase of a Chrome trace-event flow: `s` (start), `t` (step), `f`
/// (end). All flow events sharing an id form one causal arrow chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// `"ph": "s"` — the flow's origin point.
    Start,
    /// `"ph": "t"` — an intermediate binding point.
    Step,
    /// `"ph": "f"` — the flow's terminal point.
    End,
}

impl FlowPhase {
    /// The trace-event `ph` letter.
    pub fn ph(self) -> char {
        match self {
            FlowPhase::Start => 's',
            FlowPhase::Step => 't',
            FlowPhase::End => 'f',
        }
    }
}

/// One recorded trace event (a Chrome trace-event `X` complete span,
/// `i` instant, or `s`/`t`/`f` flow phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Track the event belongs to (becomes a Chrome "thread" lane).
    pub track: String,
    /// Event category (`cat` in the trace-event format).
    pub cat: &'static str,
    /// Event name.
    pub name: String,
    /// Virtual timestamp, microseconds.
    pub ts_us: u64,
    /// Duration in microseconds; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// Flow phase + flow id; `Some` marks a flow event (`dur_us` is
    /// then ignored by the exporter).
    pub flow: Option<(FlowPhase, u64)>,
    /// Per-track emission ordinal (export sort key).
    pub seq: u64,
    /// Integer-valued event arguments.
    pub args: Vec<(&'static str, u64)>,
}

/// Accumulated telemetry of one thread (or, merged, of the process).
#[derive(Debug, Default)]
pub struct Sink {
    /// Monotonic counters by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by metric name.
    pub hists: BTreeMap<String, Hist>,
    /// Trace events in emission order.
    pub events: Vec<Event>,
    /// Next sequence number per track.
    track_seq: BTreeMap<String, u64>,
}

impl Sink {
    /// Adds `delta` to a counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Hist::default();
            h.record(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Records a trace event, assigning its per-track sequence number.
    pub fn push_event(
        &mut self,
        track: &str,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        dur_us: Option<u64>,
        args: &[(&'static str, u64)],
    ) {
        let seq = self.next_seq(track);
        self.events.push(Event {
            track: track.to_string(),
            cat,
            name: name.to_string(),
            ts_us,
            dur_us,
            flow: None,
            seq,
            args: args.to_vec(),
        });
    }

    /// Records a flow event (phase `s`/`t`/`f` with a flow id),
    /// assigning its per-track sequence number.
    pub fn push_flow(
        &mut self,
        track: &str,
        cat: &'static str,
        name: &str,
        ts_us: u64,
        phase: FlowPhase,
        id: u64,
    ) {
        let seq = self.next_seq(track);
        self.events.push(Event {
            track: track.to_string(),
            cat,
            name: name.to_string(),
            ts_us,
            dur_us: None,
            flow: Some((phase, id)),
            seq,
            args: Vec::new(),
        });
    }

    fn next_seq(&mut self, track: &str) -> u64 {
        if let Some(s) = self.track_seq.get_mut(track) {
            let v = *s;
            *s += 1;
            v
        } else {
            self.track_seq.insert(track.to_string(), 1);
            0
        }
    }

    /// Folds `other` into `self`. Counter/histogram merges are
    /// commutative; events concatenate (the exporter re-orders them by
    /// `(track, seq)`).
    pub fn merge(&mut self, other: Sink) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.hists {
            if let Some(mine) = self.hists.get_mut(&k) {
                mine.merge(&h);
            } else {
                self.hists.insert(k, h);
            }
        }
        self.events.extend(other.events);
        // Track sequences never continue across sinks: the tracking
        // contract says a track lives entirely within one sink, so the
        // counters are only kept for the (local) emission path.
        for (k, s) in other.track_seq {
            let e = self.track_seq.entry(k).or_insert(0);
            *e = (*e).max(s);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
    }
}

/// Process-global sink that thread-local sinks fold into on thread exit.
static GLOBAL: Mutex<Option<Sink>> = Mutex::new(None);

/// Wrapper whose `Drop` flushes the thread's sink into [`GLOBAL`].
struct LocalSink(Sink);

impl Drop for LocalSink {
    fn drop(&mut self) {
        let local = std::mem::take(&mut self.0);
        if local.is_empty() {
            return;
        }
        let mut global =
            GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        global.get_or_insert_with(Sink::default).merge(local);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSink> = RefCell::new(LocalSink(Sink::default()));
}

/// Runs `f` against this thread's sink.
pub fn with_local<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    LOCAL.with(|cell| f(&mut cell.borrow_mut().0))
}

/// Immediately folds this thread's sink into the global sink.
///
/// Worker pools must call this before signalling completion:
/// `std::thread::scope` wakes the owning thread when the spawned
/// closure *returns*, which can be before the worker's TLS destructors
/// (the `Drop`-based flush) have run — so a drain racing that window
/// would silently miss the last workers' telemetry. The `Drop` flush
/// remains as a backstop for plain spawned-and-joined threads, where
/// `JoinHandle::join` does wait for full thread termination.
pub fn flush_local() {
    let local = with_local(std::mem::take);
    if local.is_empty() {
        return;
    }
    let mut global = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    global.get_or_insert_with(Sink::default).merge(local);
}

/// Drains this thread's sink and the global sink into one merged sink,
/// resetting both. Must be called after parallel sections have returned
/// (the `femux-par` substrate joins its scoped workers, which flushes
/// their thread-local sinks into the global one before this can run).
pub fn drain_all() -> Sink {
    let mut merged = std::mem::take(
        GLOBAL
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert_with(Sink::default),
    );
    let local = with_local(std::mem::take);
    merged.merge(local);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let mut s = Sink::default();
        s.add("a", 2);
        s.add("a", 3);
        s.observe("h", 10);
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.hists["h"].count, 1);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let mk = |vals: &[(&str, u64)]| {
            let mut s = Sink::default();
            for (k, v) in vals {
                s.add(k, *v);
                s.observe("shared", *v);
            }
            s
        };
        let mut ab = mk(&[("x", 1), ("y", 2)]);
        ab.merge(mk(&[("x", 10), ("z", 4)]));
        let mut ba = mk(&[("x", 10), ("z", 4)]);
        ba.merge(mk(&[("x", 1), ("y", 2)]));
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.hists, ba.hists);
    }

    #[test]
    fn events_get_per_track_sequence_numbers() {
        let mut s = Sink::default();
        s.push_event("t1", "c", "a", 5, None, &[]);
        s.push_event("t2", "c", "b", 1, Some(2), &[]);
        s.push_event("t1", "c", "c", 9, None, &[]);
        let seqs: Vec<(String, u64)> = s
            .events
            .iter()
            .map(|e| (e.track.clone(), e.seq))
            .collect();
        assert_eq!(
            seqs,
            vec![
                ("t1".to_string(), 0),
                ("t2".to_string(), 0),
                ("t1".to_string(), 1)
            ]
        );
    }
}

//! Deterministic fault injection for the FeMux reproduction.
//!
//! The paper characterizes a *production* platform: pods crash and are
//! rescheduled, cold starts straggle far past their median, autoscaler
//! actuations lag behind decisions (§4's platform-delay analysis), and
//! control-plane components occasionally emit garbage. This crate turns
//! those misbehaviors into a seeded, replayable *fault plan* so the
//! simulator and the FeMux manager can be studied under stress without
//! giving up a single bit of reproducibility.
//!
//! # Fault taxonomy
//!
//! - **Pod crashes** ([`AppFaults::crash_pod`]): a pod dies and is
//!   rescheduled in place; it stays allocated but must redo its cold
//!   start, so warm capacity drops until it is ready again.
//! - **Cold-start stragglers** ([`AppFaults::straggle`]): a cold start
//!   takes [`FaultConfig::straggler_factor`] times its nominal latency
//!   (the multiplicative tail the paper observes in production).
//! - **Actuation delay / drop** ([`AppFaults::actuation_fate`]): the
//!   gap between a `ScalingPolicy` decision and the platform applying
//!   it — a decision can arrive one or more ticks late, or never.
//! - **Report loss** ([`AppFaults::lose_report`]): the queue-proxy
//!   concurrency report for an interval goes missing; policies see a
//!   `NaN` sample and must degrade gracefully.
//! - **Node crashes** ([`NodeFaults::crash_node`]): an entire cluster
//!   node goes down, killing every resident pod at once; the node comes
//!   back after [`FaultConfig::node_recovery_ticks`] intervals while the
//!   engine reschedules the displaced pods onto survivors under capped
//!   exponential backoff. Only meaningful when the simulator's cluster
//!   layer (`SimConfig::cluster`) is enabled.
//! - **Forecaster faults** ([`ForecastFaults::fate`]): a forecaster
//!   returns `NaN`/`∞` or panics outright ([`inject_panic`]), exercising
//!   the manager's fallback ladder.
//!
//! # Determinism contract
//!
//! Each application draws from two private streams — one for engine
//! faults, one for forecaster faults — derived from
//! ([`FaultConfig::seed`], `AppId`) via [`femux_stats::rng::Rng`]. An
//! app's fault sequence therefore depends only on the seed, its id, and
//! its own (sequential) simulation, never on `FEMUX_THREADS`, other
//! apps, or scheduling. Injection sites draw in a fixed order per tick
//! (per-pod crash draws in pod order, then the report-loss draw, then
//! the per-node crash draws in node order, then the actuation-fate draw
//! after the policy decision; one straggler draw per cold start), which
//! the sim engine documents and upholds. The node stream is keyed by
//! node index rather than app id (see [`FaultConfig::node_faults`]) but
//! each app run owns a private copy, so per-app independence holds.
//!
//! A plan with all rates zero draws but never triggers, so its runs are
//! byte-identical to runs with no fault layer at all; `fault.*`
//! telemetry is emitted only when an injection actually fires.

use femux_stats::rng::Rng;
use femux_trace::types::AppId;

/// Domain separator for the engine-fault stream.
const ENGINE_DOMAIN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Domain separator for the forecaster-fault stream.
const FORECAST_DOMAIN: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Domain separator for the per-node crash stream. Keyed by
/// (`seed`, node index, this domain) — *not* by app — so every app run
/// replays the same cluster-wide crash plan; and separated from the
/// pod-level domains so enabling (or zero-rating) node crashes never
/// shifts a single pod-level draw.
const NODE_DOMAIN: u64 = 0xD6E8_FEB8_6659_FD93;

/// Rates and parameters for every injectable fault class.
///
/// All rates are probabilities in `[0, 1]`; a rate of zero disables the
/// class (and draws for it never trigger, preserving byte-identity with
/// fault-free runs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Root seed of the fault plan. Per-app streams are derived from it
    /// so the plan replays identically at any thread count.
    pub seed: u64,
    /// Per-pod, per-tick crash probability.
    pub pod_crash_rate: f64,
    /// Per-cold-start probability of a latency straggler.
    pub straggler_rate: f64,
    /// Multiplier applied to a straggling cold start's latency (≥ 1).
    pub straggler_factor: f64,
    /// Per-decision probability the actuation is delayed.
    pub actuation_delay_rate: f64,
    /// Ticks a delayed actuation waits before the engine applies it.
    pub actuation_delay_ticks: u64,
    /// Per-decision probability the actuation is dropped entirely.
    pub actuation_drop_rate: f64,
    /// Per-tick probability the interval's concurrency report is lost.
    pub report_loss_rate: f64,
    /// Per-forecast probability of an injected forecaster fault.
    pub forecast_fault_rate: f64,
    /// Per-node, per-tick crash probability (cluster layer only).
    pub node_crash_rate: f64,
    /// Intervals a crashed node stays down before recovering (≥ 1).
    pub node_recovery_ticks: u64,
}

impl FaultConfig {
    /// A plan with every rate zero: draws happen, nothing ever fires.
    pub fn off(seed: u64) -> Self {
        FaultConfig {
            seed,
            pod_crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 10.0,
            actuation_delay_rate: 0.0,
            actuation_delay_ticks: 1,
            actuation_drop_rate: 0.0,
            report_loss_rate: 0.0,
            forecast_fault_rate: 0.0,
            node_crash_rate: 0.0,
            node_recovery_ticks: 1,
        }
    }

    /// A plan with the same rate for every fault class — the knob the
    /// `robustness_sweep` experiment turns ({0, 1, 5, 10}%).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            pod_crash_rate: rate,
            straggler_rate: rate,
            actuation_delay_rate: rate,
            actuation_drop_rate: rate,
            report_loss_rate: rate,
            forecast_fault_rate: rate,
            node_crash_rate: rate,
            ..FaultConfig::off(seed)
        }
    }

    /// Checks every rate is a probability and every parameter sane.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("pod_crash_rate", self.pod_crash_rate),
            ("straggler_rate", self.straggler_rate),
            ("actuation_delay_rate", self.actuation_delay_rate),
            ("actuation_drop_rate", self.actuation_drop_rate),
            ("report_loss_rate", self.report_loss_rate),
            ("forecast_fault_rate", self.forecast_fault_rate),
            ("node_crash_rate", self.node_crash_rate),
        ];
        for (name, r) in rates {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0, 1], got {r}"));
            }
        }
        if self.actuation_drop_rate + self.actuation_delay_rate > 1.0 {
            return Err(
                "actuation_drop_rate + actuation_delay_rate must not \
                 exceed 1"
                    .to_string(),
            );
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0
        {
            return Err(format!(
                "straggler_factor must be a finite multiplier >= 1, got {}",
                self.straggler_factor
            ));
        }
        if self.node_recovery_ticks == 0 {
            return Err(
                "node_recovery_ticks must be >= 1 (a crashed node is \
                 down for at least one interval)"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Derives a stream seed for (`seed`, `app`, `domain`). SplitMix64
    /// expansion inside `Rng::seed_from_u64` separates adjacent inputs.
    fn stream_seed(&self, app: AppId, domain: u64) -> u64 {
        Rng::seed_from_u64(
            self.seed
                ^ domain
                ^ (app.0 as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        )
        .next_u64()
    }

    /// The engine-side fault stream for one application.
    pub fn engine_faults(&self, app: AppId) -> AppFaults {
        AppFaults {
            rng: Rng::seed_from_u64(self.stream_seed(app, ENGINE_DOMAIN)),
            pod_crash_rate: self.pod_crash_rate,
            straggler_rate: self.straggler_rate,
            straggler_factor: self.straggler_factor,
            actuation_delay_rate: self.actuation_delay_rate,
            actuation_delay_ticks: self.actuation_delay_ticks,
            actuation_drop_rate: self.actuation_drop_rate,
            report_loss_rate: self.report_loss_rate,
            stats: FaultStats::default(),
        }
    }

    /// The forecaster-side fault stream for one application.
    pub fn forecast_faults(&self, app: AppId) -> ForecastFaults {
        ForecastFaults {
            rng: Rng::seed_from_u64(self.stream_seed(app, FORECAST_DOMAIN)),
            rate: self.forecast_fault_rate,
            stats: FaultStats::default(),
        }
    }

    /// The node-crash streams for an `n_nodes`-node cluster. Each node
    /// gets a private stream keyed by (`seed`, node index,
    /// `NODE_DOMAIN`) — deliberately app-free, so every app run replays
    /// the same cluster-wide crash plan. Each run still owns its own
    /// copy, preserving per-app (and therefore thread-count)
    /// determinism.
    pub fn node_faults(&self, n_nodes: usize) -> NodeFaults {
        NodeFaults {
            rngs: (0..n_nodes)
                .map(|node| {
                    Rng::seed_from_u64(
                        Rng::seed_from_u64(
                            self.seed
                                ^ NODE_DOMAIN
                                ^ (node as u64)
                                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
                        )
                        .next_u64(),
                    )
                })
                .collect(),
            rate: self.node_crash_rate,
            recovery_ticks: self.node_recovery_ticks,
            stats: FaultStats::default(),
        }
    }
}

/// Counts of every injected fault, per app or merged fleet-wide.
///
/// Every counter here is incremented together with the matching
/// `fault.*` telemetry counter at the moment the injection fires, so an
/// experiment can cross-check its metrics report against the plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Pods crashed and restarted cold.
    pub pod_crashes: u64,
    /// Cold starts inflated by the straggler factor.
    pub cold_stragglers: u64,
    /// Scaling decisions applied late.
    pub actuation_delays: u64,
    /// Scaling decisions never applied.
    pub actuation_drops: u64,
    /// Concurrency reports replaced by `NaN`.
    pub report_losses: u64,
    /// Forecaster outputs corrupted or panicked.
    pub forecast_faults: u64,
    /// Cluster nodes crashed (every resident pod displaced at once).
    pub node_crashes: u64,
}

impl FaultStats {
    /// Adds another record's counts into this one (commutative).
    pub fn merge(&mut self, other: &FaultStats) {
        self.pod_crashes += other.pod_crashes;
        self.cold_stragglers += other.cold_stragglers;
        self.actuation_delays += other.actuation_delays;
        self.actuation_drops += other.actuation_drops;
        self.report_losses += other.report_losses;
        self.forecast_faults += other.forecast_faults;
        self.node_crashes += other.node_crashes;
    }

    /// Total injections across every class.
    pub fn total(&self) -> u64 {
        self.pod_crashes
            + self.cold_stragglers
            + self.actuation_delays
            + self.actuation_drops
            + self.report_losses
            + self.forecast_faults
            + self.node_crashes
    }
}

/// What happens to one scaling decision on its way to the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationFate {
    /// Applied immediately (the fault-free path).
    Apply,
    /// Applied after the given number of ticks.
    Delay(u64),
    /// Never applied.
    Drop,
}

/// One application's engine-side fault stream.
///
/// The sim engine calls the draw methods in a fixed documented order;
/// each method performs exactly one uniform draw, so the stream advances
/// identically whether or not a fault fires.
#[derive(Debug, Clone)]
pub struct AppFaults {
    rng: Rng,
    pod_crash_rate: f64,
    straggler_rate: f64,
    straggler_factor: f64,
    actuation_delay_rate: f64,
    actuation_delay_ticks: u64,
    actuation_drop_rate: f64,
    report_loss_rate: f64,
    /// Injections fired so far on this stream.
    pub stats: FaultStats,
}

impl AppFaults {
    /// One per-pod, per-tick draw: does this pod crash now?
    pub fn crash_pod(&mut self) -> bool {
        if self.rng.chance(self.pod_crash_rate) {
            self.stats.pod_crashes += 1;
            femux_obs::counter_add("fault.pod_crashes", 1);
            true
        } else {
            false
        }
    }

    /// One per-cold-start draw: the inflation factor, if straggling.
    pub fn straggle(&mut self) -> Option<f64> {
        if self.rng.chance(self.straggler_rate) {
            self.stats.cold_stragglers += 1;
            femux_obs::counter_add("fault.cold_stragglers", 1);
            Some(self.straggler_factor)
        } else {
            None
        }
    }

    /// One per-tick draw: is this interval's concurrency report lost?
    pub fn lose_report(&mut self) -> bool {
        if self.rng.chance(self.report_loss_rate) {
            self.stats.report_losses += 1;
            femux_obs::counter_add("fault.report_losses", 1);
            true
        } else {
            false
        }
    }

    /// One per-decision draw: apply, delay, or drop this actuation.
    pub fn actuation_fate(&mut self) -> ActuationFate {
        let u = self.rng.f64();
        if u < self.actuation_drop_rate {
            self.stats.actuation_drops += 1;
            femux_obs::counter_add("fault.actuation_drops", 1);
            ActuationFate::Drop
        } else if u < self.actuation_drop_rate + self.actuation_delay_rate {
            self.stats.actuation_delays += 1;
            femux_obs::counter_add("fault.actuation_delays", 1);
            ActuationFate::Delay(self.actuation_delay_ticks)
        } else {
            ActuationFate::Apply
        }
    }
}

/// The cluster's node-crash streams: one private RNG per node.
///
/// The sim engine draws once per *up* node per tick, in ascending node
/// order, after the pod-level per-tick draws (`crash_pod`,
/// `lose_report`) and before the decision-side `actuation_fate` draw —
/// the draw-order contract the `fault-draw-order` audit rule enforces.
/// Down nodes cannot crash again, so they are skipped; up-ness is
/// itself deterministic, so the stream stays replayable.
#[derive(Debug, Clone)]
pub struct NodeFaults {
    rngs: Vec<Rng>,
    rate: f64,
    recovery_ticks: u64,
    /// Injections fired so far (only `node_crashes` is ever non-zero).
    pub stats: FaultStats,
}

impl NodeFaults {
    /// One per-up-node, per-tick draw: does this node crash now?
    pub fn crash_node(&mut self, node: usize) -> bool {
        if self.rngs[node].chance(self.rate) {
            self.stats.node_crashes += 1;
            femux_obs::counter_add("fault.node_crashes", 1);
            true
        } else {
            false
        }
    }

    /// How many intervals a crashed node stays down.
    pub fn recovery_ticks(&self) -> u64 {
        self.recovery_ticks
    }

    /// Number of per-node streams (== cluster node count).
    pub fn n_nodes(&self) -> usize {
        self.rngs.len()
    }
}

/// What one forecast call is corrupted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastFate {
    /// Untouched (the fault-free path).
    None,
    /// Every predicted value becomes `NaN`.
    Nan,
    /// Every predicted value becomes `+∞`.
    Inf,
    /// The forecaster panics mid-call (see [`inject_panic`]).
    Panic,
}

/// One application's forecaster-fault stream.
#[derive(Debug, Clone)]
pub struct ForecastFaults {
    rng: Rng,
    rate: f64,
    /// Injections fired so far on this stream (only `forecast_faults`
    /// is ever non-zero here).
    pub stats: FaultStats,
}

impl ForecastFaults {
    /// Draws the fate of the next forecast call. The flavor draw only
    /// happens when the fault fires, which stays deterministic because
    /// this stream is private to one (sequential) application.
    pub fn fate(&mut self) -> ForecastFate {
        if !self.rng.chance(self.rate) {
            return ForecastFate::None;
        }
        self.stats.forecast_faults += 1;
        femux_obs::counter_add("fault.forecast_faults", 1);
        match self.rng.below(3) {
            0 => ForecastFate::Nan,
            1 => ForecastFate::Inf,
            _ => ForecastFate::Panic,
        }
    }
}

/// Marker payload carried by injected forecaster panics, so the panic
/// hook installed by [`silence_injected_panics`] can suppress their
/// reports without touching genuine panics.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault;

/// Panics with the [`InjectedFault`] marker payload. Callers are
/// expected to sit under a `catch_unwind` (the manager's forecast
/// sanitizer); the panic is the injected fault.
pub fn inject_panic() -> ! {
    std::panic::panic_any(InjectedFault)
}

/// Installs a process-global panic hook that suppresses the default
/// stderr report for [`InjectedFault`] panics only; every other panic
/// still reaches the previous hook. Idempotent — the hook is installed
/// once per process, however many fault streams are created.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(n: u32) -> AppId {
        AppId(n)
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultConfig::uniform(7, 0.3);
        let mut a = cfg.engine_faults(app(5));
        let mut b = cfg.engine_faults(app(5));
        for _ in 0..200 {
            assert_eq!(a.crash_pod(), b.crash_pod());
            assert_eq!(a.straggle(), b.straggle());
            assert_eq!(a.lose_report(), b.lose_report());
            assert_eq!(a.actuation_fate(), b.actuation_fate());
        }
        assert_eq!(a.stats, b.stats);
        let mut fa = cfg.forecast_faults(app(5));
        let mut fb = cfg.forecast_faults(app(5));
        for _ in 0..200 {
            assert_eq!(fa.fate(), fb.fate());
        }
    }

    #[test]
    fn apps_get_independent_streams() {
        let cfg = FaultConfig::uniform(7, 0.5);
        let draws = |id: u32| {
            let mut f = cfg.engine_faults(app(id));
            (0..64).map(|_| f.crash_pod()).collect::<Vec<_>>()
        };
        assert_ne!(draws(1), draws(2), "streams must differ per app");
    }

    #[test]
    fn engine_and_forecast_streams_are_domain_separated() {
        let cfg = FaultConfig::uniform(7, 0.5);
        let mut e = cfg.engine_faults(app(1));
        let mut f = cfg.forecast_faults(app(1));
        let engine: Vec<bool> = (0..64).map(|_| e.crash_pod()).collect();
        let forecast: Vec<bool> =
            (0..64).map(|_| f.fate() != ForecastFate::None).collect();
        assert_ne!(engine, forecast);
    }

    #[test]
    fn zero_rate_never_fires() {
        let cfg = FaultConfig::off(42);
        let mut f = cfg.engine_faults(app(1));
        for _ in 0..500 {
            assert!(!f.crash_pod());
            assert!(f.straggle().is_none());
            assert!(!f.lose_report());
            assert_eq!(f.actuation_fate(), ActuationFate::Apply);
        }
        assert_eq!(f.stats, FaultStats::default());
        let mut ff = cfg.forecast_faults(app(1));
        for _ in 0..500 {
            assert_eq!(ff.fate(), ForecastFate::None);
        }
        assert_eq!(ff.stats.forecast_faults, 0);
    }

    #[test]
    fn full_rate_always_fires_and_counts() {
        let mut cfg = FaultConfig::uniform(42, 1.0);
        // Drop + delay cannot both be certain; make delay the certainty.
        cfg.actuation_drop_rate = 0.0;
        let mut f = cfg.engine_faults(app(9));
        for _ in 0..50 {
            assert!(f.crash_pod());
            assert_eq!(f.straggle(), Some(10.0));
            assert!(f.lose_report());
            assert_eq!(f.actuation_fate(), ActuationFate::Delay(1));
        }
        assert_eq!(f.stats.pod_crashes, 50);
        assert_eq!(f.stats.cold_stragglers, 50);
        assert_eq!(f.stats.report_losses, 50);
        assert_eq!(f.stats.actuation_delays, 50);
        assert_eq!(f.stats.total(), 200);
    }

    #[test]
    fn forecast_fates_cover_all_flavors() {
        let cfg = FaultConfig::uniform(3, 1.0);
        let mut f = cfg.forecast_faults(app(2));
        let mut saw = [false; 3];
        for _ in 0..100 {
            match f.fate() {
                ForecastFate::Nan => saw[0] = true,
                ForecastFate::Inf => saw[1] = true,
                ForecastFate::Panic => saw[2] = true,
                ForecastFate::None => {
                    panic!("rate 1.0 must always fire")
                }
            }
        }
        assert_eq!(saw, [true; 3], "all flavors drawn at rate 1");
        assert_eq!(f.stats.forecast_faults, 100);
    }

    #[test]
    fn validate_accepts_presets_and_rejects_garbage() {
        assert!(FaultConfig::off(1).validate().is_ok());
        assert!(FaultConfig::uniform(1, 0.1).validate().is_ok());
        assert!(FaultConfig::uniform(1, 1.5).validate().is_err());
        assert!(FaultConfig::uniform(1, -0.1).validate().is_err());
        assert!(FaultConfig::uniform(1, f64::NAN).validate().is_err());
        let mut cfg = FaultConfig::off(1);
        cfg.straggler_factor = 0.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::off(1);
        cfg.actuation_delay_rate = 0.7;
        cfg.actuation_drop_rate = 0.7;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn stats_merge_is_field_wise() {
        let mut a = FaultStats {
            pod_crashes: 1,
            cold_stragglers: 2,
            actuation_delays: 3,
            actuation_drops: 4,
            report_losses: 5,
            forecast_faults: 6,
            node_crashes: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.pod_crashes, 2);
        assert_eq!(a.forecast_faults, 12);
        assert_eq!(a.node_crashes, 14);
        assert_eq!(a.total(), 2 * b.total());
    }

    #[test]
    fn node_streams_are_per_node_and_replayable() {
        let cfg = FaultConfig::uniform(7, 0.5);
        let mut a = cfg.node_faults(4);
        let mut b = cfg.node_faults(4);
        for _ in 0..100 {
            for node in 0..4 {
                assert_eq!(a.crash_node(node), b.crash_node(node));
            }
        }
        assert_eq!(a.stats, b.stats);
        let draws = |node: usize| {
            let mut f = cfg.node_faults(4);
            (0..64).map(|_| f.crash_node(node)).collect::<Vec<_>>()
        };
        assert_ne!(draws(0), draws(1), "streams must differ per node");
    }

    #[test]
    fn node_domain_is_separated_from_pod_domains() {
        // Draining the node stream must not shift the app streams: the
        // app stream is constructed from (seed, app, ENGINE_DOMAIN)
        // only, so the sequences are independent by construction.
        let cfg = FaultConfig::uniform(7, 0.5);
        let before: Vec<bool> = {
            let mut e = cfg.engine_faults(app(1));
            (0..64).map(|_| e.crash_pod()).collect()
        };
        let mut n = cfg.node_faults(2);
        for _ in 0..64 {
            n.crash_node(0);
            n.crash_node(1);
        }
        let after: Vec<bool> = {
            let mut e = cfg.engine_faults(app(1));
            (0..64).map(|_| e.crash_pod()).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn node_zero_rate_never_fires_and_full_rate_always_does() {
        let mut f = FaultConfig::off(9).node_faults(3);
        for _ in 0..200 {
            for node in 0..3 {
                assert!(!f.crash_node(node));
            }
        }
        assert_eq!(f.stats, FaultStats::default());

        let mut f = FaultConfig::uniform(9, 1.0).node_faults(3);
        for _ in 0..50 {
            for node in 0..3 {
                assert!(f.crash_node(node));
            }
        }
        assert_eq!(f.stats.node_crashes, 150);
        assert_eq!(f.stats.total(), 150);
        assert_eq!(f.recovery_ticks(), 1);
        assert_eq!(f.n_nodes(), 3);
    }

    #[test]
    fn node_recovery_ticks_zero_is_rejected() {
        let mut cfg = FaultConfig::off(1);
        cfg.node_recovery_ticks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::off(1);
        cfg.node_crash_rate = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn injected_panic_carries_marker() {
        silence_injected_panics();
        let err = std::panic::catch_unwind(|| inject_panic())
            .expect_err("must panic");
        assert!(err.downcast_ref::<InjectedFault>().is_some());
    }
}

//! Trace serialization.
//!
//! Traces round-trip through a simple line-oriented CSV format so that
//! experiments can persist fleets and users can import their own traces.
//! Two record kinds share one file, distinguished by a leading tag:
//!
//! ```text
//! A,<app_id>,<kind>,<cpu_milli>,<mem_mb>,<concurrency>,<min_scale>,<mem_used_mb>,<cold_start_ms>
//! I,<app_id>,<start_ms>,<duration_ms>,<delay_ms>
//! ```
//!
//! The first line is a header `femux-trace,v1,<span_ms>`.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use crate::types::{
    AppConfig, AppId, AppRecord, Invocation, Trace, WorkloadKind,
};

/// Errors arising while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem, with a line number, the offending field (when
    /// the problem is specific to one), and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The field being parsed when the error arose, if any —
        /// `None` for line-level problems (bad header, unknown tag).
        field: Option<&'static str>,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Parse {
                line,
                field: Some(field),
                message,
            } => {
                write!(
                    f,
                    "parse error at line {line}, field {field}: {message}"
                )
            }
            TraceIoError::Parse {
                line,
                field: None,
                message,
            } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn kind_tag(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Application => "app",
        WorkloadKind::Function => "func",
        WorkloadKind::BatchJob => "batch",
    }
}

fn parse_kind(tag: &str) -> Option<WorkloadKind> {
    match tag {
        "app" => Some(WorkloadKind::Application),
        "func" => Some(WorkloadKind::Function),
        "batch" => Some(WorkloadKind::BatchJob),
        _ => None,
    }
}

/// Writes a trace in the CSV format described in the module docs.
pub fn write_trace<W: Write>(
    trace: &Trace,
    out: &mut W,
) -> std::io::Result<()> {
    writeln!(out, "femux-trace,v1,{}", trace.span_ms)?;
    for app in &trace.apps {
        writeln!(
            out,
            "A,{},{},{},{},{},{},{},{}",
            app.id.0,
            kind_tag(app.kind),
            app.config.cpu_milli,
            app.config.mem_mb,
            app.config.concurrency,
            app.config.min_scale,
            app.mem_used_mb,
            app.cold_start_ms
        )?;
        for inv in &app.invocations {
            writeln!(
                out,
                "I,{},{},{},{}",
                app.id.0, inv.start_ms, inv.duration_ms, inv.delay_ms
            )?;
        }
    }
    Ok(())
}

fn parse_err(line: usize, message: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse {
        line,
        field: None,
        message: message.into(),
    }
}

fn field_err(
    line: usize,
    name: &'static str,
    message: impl Into<String>,
) -> TraceIoError {
    TraceIoError::Parse {
        line,
        field: Some(name),
        message: message.into(),
    }
}

fn field<'a>(
    parts: &mut std::str::Split<'a, char>,
    line: usize,
    name: &'static str,
) -> Result<&'a str, TraceIoError> {
    parts.next().ok_or_else(|| {
        field_err(line, name, "record truncated before this field")
    })
}

fn num<T: std::str::FromStr>(
    s: &str,
    line: usize,
    name: &'static str,
) -> Result<T, TraceIoError> {
    s.parse()
        .map_err(|_| field_err(line, name, format!("bad {name}: {s:?}")))
}

/// Reads a trace written by [`write_trace`].
///
/// Invocations are re-sorted per application on load, so files produced
/// by external tooling need not be pre-sorted. At the *serving*
/// boundary, where silently reordering live history would rewrite the
/// past, use [`crate::ingest::read_trace_strict`] instead.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, TraceIoError> {
    let mut trace = parse_trace(input)?;
    for app in &mut trace.apps {
        app.sort();
    }
    Ok(trace)
}

/// Parses the CSV format without normalizing invocation order — the
/// shared front half of [`read_trace`] (which then sorts) and the strict
/// serving-boundary loader (which refuses or clamps instead).
pub(crate) fn parse_trace<R: BufRead>(
    input: R,
) -> Result<Trace, TraceIoError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))??;
    let mut hp = header.split(',');
    if hp.next() != Some("femux-trace") || hp.next() != Some("v1") {
        return Err(parse_err(1, "bad header"));
    }
    let span_ms: u64 = num(
        hp.next().ok_or_else(|| parse_err(1, "missing span"))?,
        1,
        "span",
    )?;
    let mut trace = Trace::new(span_ms);
    // Ordered: app-id -> slot lookups must stay deterministic even if
    // a future writer enumerates this index into an output file.
    let mut index: BTreeMap<u32, usize> = BTreeMap::new();
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        match field(&mut parts, lineno, "tag")? {
            "A" => {
                let id: u32 =
                    num(field(&mut parts, lineno, "id")?, lineno, "id")?;
                let kind = parse_kind(field(&mut parts, lineno, "kind")?)
                    .ok_or_else(|| {
                        field_err(lineno, "kind", "bad kind")
                    })?;
                let cpu_milli =
                    num(field(&mut parts, lineno, "cpu")?, lineno, "cpu")?;
                let mem_mb =
                    num(field(&mut parts, lineno, "mem")?, lineno, "mem")?;
                let concurrency = num(
                    field(&mut parts, lineno, "concurrency")?,
                    lineno,
                    "concurrency",
                )?;
                let min_scale = num(
                    field(&mut parts, lineno, "min_scale")?,
                    lineno,
                    "min_scale",
                )?;
                let mem_used_mb = num(
                    field(&mut parts, lineno, "mem_used")?,
                    lineno,
                    "mem_used",
                )?;
                let cold_start_ms = num(
                    field(&mut parts, lineno, "cold_start")?,
                    lineno,
                    "cold_start",
                )?;
                if index.contains_key(&id) {
                    return Err(parse_err(
                        lineno,
                        format!("duplicate app {id}"),
                    ));
                }
                index.insert(id, trace.apps.len());
                trace.apps.push(AppRecord {
                    id: AppId(id),
                    kind,
                    config: AppConfig {
                        cpu_milli,
                        mem_mb,
                        concurrency,
                        min_scale,
                    },
                    mem_used_mb,
                    cold_start_ms,
                    invocations: Vec::new(),
                });
            }
            "I" => {
                let id: u32 =
                    num(field(&mut parts, lineno, "id")?, lineno, "id")?;
                let start_ms = num(
                    field(&mut parts, lineno, "start")?,
                    lineno,
                    "start",
                )?;
                let duration_ms = num(
                    field(&mut parts, lineno, "duration")?,
                    lineno,
                    "duration",
                )?;
                let delay_ms = num(
                    field(&mut parts, lineno, "delay")?,
                    lineno,
                    "delay",
                )?;
                let slot = *index.get(&id).ok_or_else(|| {
                    parse_err(lineno, format!("invocation for unknown app {id}"))
                })?;
                trace.apps[slot].invocations.push(Invocation {
                    start_ms,
                    duration_ms,
                    delay_ms,
                });
            }
            other => {
                return Err(parse_err(
                    lineno,
                    format!("unknown record tag {other:?}"),
                ))
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ibm::{generate, IbmFleetConfig};

    #[test]
    fn round_trip_synthetic_fleet() {
        let trace = generate(&IbmFleetConfig::small(42));
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn unsorted_invocations_get_sorted() {
        let text = "femux-trace,v1,10000\n\
                    A,3,app,1000,4096,100,0,150,808\n\
                    I,3,500,10,0\n\
                    I,3,100,10,0\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert!(trace.apps[0].is_sorted());
        assert_eq!(trace.apps[0].invocations[0].start_ms, 100);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_trace("nope,v1,10\n".as_bytes()).is_err());
        assert!(read_trace("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_app() {
        let text = "femux-trace,v1,10000\nI,9,1,2,3\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown app"));
    }

    #[test]
    fn rejects_duplicate_app() {
        let text = "femux-trace,v1,1\n\
                    A,1,app,1,1,1,0,1,1\n\
                    A,1,app,1,1,1,0,1,1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_malformed_numbers() {
        let text = "femux-trace,v1,1\nA,x,app,1,1,1,0,1,1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad id"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "femux-trace,v1,1\nA,1,app,1,1,1,0,1,1\nQ,oops\n";
        match read_trace(text.as_bytes()).unwrap_err() {
            TraceIoError::Parse { line, field, .. } => {
                assert_eq!(line, 3);
                assert_eq!(field, None, "tag errors are line-level");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn truncated_record_names_the_missing_field() {
        // An app row cut off after mem: the next expected field is the
        // concurrency limit.
        let text = "femux-trace,v1,1\nA,1,app,1,1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        match &err {
            TraceIoError::Parse { line, field, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(*field, Some("concurrency"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(
            err.to_string().contains("line 2")
                && err.to_string().contains("concurrency"),
            "message must carry line and field: {err}"
        );
    }

    #[test]
    fn non_numeric_field_names_the_bad_field() {
        let text =
            "femux-trace,v1,1\nA,1,app,1,1,1,0,1,1\nI,1,abc,2,3\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        match &err {
            TraceIoError::Parse { line, field, .. } => {
                assert_eq!(*line, 3);
                assert_eq!(*field, Some("start"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("\"abc\""), "{err}");
    }

    #[test]
    fn out_of_order_timestamps_are_accepted_and_resorted() {
        // External tooling may interleave apps and emit timestamps in
        // any order; loading is lenient and normalizes per app.
        let text = "femux-trace,v1,10000\n\
                    A,1,app,1000,4096,100,0,150,808\n\
                    A,2,func,1000,4096,100,0,150,808\n\
                    I,2,9000,10,0\n\
                    I,1,700,10,0\n\
                    I,2,50,10,0\n\
                    I,1,300,10,0\n";
        let trace = read_trace(text.as_bytes()).expect("lenient load");
        for app in &trace.apps {
            assert!(app.is_sorted());
        }
        assert_eq!(trace.apps[0].invocations[0].start_ms, 300);
        assert_eq!(trace.apps[1].invocations[0].start_ms, 50);
    }
}

//! Serverless trace data model and synthetic workload generation.
//!
//! This crate supplies everything the FeMux reproduction needs to stand in
//! for production traces:
//!
//! - [`types`]: millisecond-resolution invocation records with the IBM
//!   dataset's schema (execution duration, platform delay, per-app CPU /
//!   memory / concurrency / minimum-scale configuration).
//! - [`repr`]: conversions between traffic representations — per-minute
//!   counts (Azure '19), Knative average concurrency (FeMux's input), and
//!   idle times (histogram policies).
//! - [`synth`]: calibrated fleet generators (IBM-like, Azure-'19-like)
//!   and cross-dataset sketches for the comparison figures.
//! - [`split`]: train/validation/test splitting and representative
//!   sampling, following §5.1 of the paper.
//! - [`io`]: a line-oriented CSV trace format with strict error
//!   reporting.
//! - [`ingest`]: the serving-boundary loader — non-monotone timestamps
//!   are rejected or clamped (and counted), never silently reordered.
//! - [`ops`]: trace carving (subset, clip, merge, thin).

pub mod ingest;
pub mod io;
pub mod ops;
pub mod repr;
pub mod split;
pub mod synth;
pub mod types;

pub use types::{
    AppConfig, AppId, AppRecord, Invocation, Trace, WorkloadKind,
};

//! Cross-dataset comparison presets.
//!
//! Figures 3 and 15 and Table 1 compare the IBM trace against Azure '19,
//! Azure '21, Huawei '22, and Huawei '24. We model each prior dataset by
//! its published marginals (execution-time medians, popularity skew,
//! timer-trigger share, total volume) so those comparison figures can be
//! regenerated. These are *statistical sketches* of the public datasets,
//! not the datasets themselves.

use femux_stats::rng::{Rng, Zipf};

/// A statistical sketch of one public serverless dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPreset {
    /// Dataset name as it appears in the paper's figures.
    pub name: &'static str,
    /// Number of workloads to synthesize for CDF comparisons.
    pub n_apps: usize,
    /// Span in days (Table 1).
    pub duration_days: u32,
    /// Total invocations in the real dataset (Table 1), for labels.
    pub total_invocations: f64,
    /// Median of per-app mean execution time, seconds.
    pub exec_median_s: f64,
    /// Log-normal sigma of per-app mean execution time.
    pub exec_sigma: f64,
    /// Zipf exponent of the popularity distribution (higher = more skew).
    pub zipf_s: f64,
    /// Fraction of workloads that are timer-triggered, producing the
    /// vertical jumps Huawei's CDFs show (App. B.1).
    pub timer_fraction: f64,
}

/// Azure Functions 2019 (Shahrad et al.).
pub fn azure19() -> DatasetPreset {
    DatasetPreset {
        name: "Azure '19",
        n_apps: 1_000,
        duration_days: 14,
        total_invocations: 12.5e9,
        exec_median_s: 0.45,
        exec_sigma: 1.5,
        zipf_s: 0.78,
        timer_fraction: 0.0,
    }
}

/// Azure 2021 per-request trace (Zhang et al.).
pub fn azure21() -> DatasetPreset {
    DatasetPreset {
        name: "Azure '21",
        n_apps: 1_000,
        duration_days: 14,
        total_invocations: 2e6,
        exec_median_s: 0.60,
        exec_sigma: 1.4,
        zipf_s: 0.85,
        timer_fraction: 0.0,
    }
}

/// Huawei Public 2022 (Joosen et al.).
pub fn huawei22() -> DatasetPreset {
    DatasetPreset {
        name: "Huawei '22",
        n_apps: 1_000,
        duration_days: 26,
        total_invocations: 2.5e9,
        exec_median_s: 0.25,
        exec_sigma: 1.3,
        zipf_s: 0.80,
        timer_fraction: 0.5,
    }
}

/// Huawei 2024 (Joosen et al., EuroSys '25).
pub fn huawei24() -> DatasetPreset {
    DatasetPreset {
        name: "Huawei '24",
        n_apps: 1_000,
        duration_days: 31,
        total_invocations: 85e9,
        exec_median_s: 0.08,
        exec_sigma: 1.4,
        zipf_s: 0.80,
        timer_fraction: 0.63,
    }
}

/// The IBM dataset sketch (this paper).
pub fn ibm() -> DatasetPreset {
    DatasetPreset {
        name: "IBM",
        n_apps: 1_283,
        duration_days: 62,
        total_invocations: 1.9e9,
        exec_median_s: 0.05,
        exec_sigma: 2.8,
        zipf_s: 0.66,
        timer_fraction: 0.1,
    }
}

/// All presets in figure order.
pub fn all_presets() -> Vec<DatasetPreset> {
    vec![azure19(), azure21(), huawei22(), huawei24(), ibm()]
}

impl DatasetPreset {
    /// Samples per-app mean execution times (seconds), the series behind
    /// Fig. 3-Left.
    pub fn sample_app_exec_means(&self, rng: &mut Rng) -> Vec<f64> {
        (0..self.n_apps)
            .map(|_| {
                rng.lognormal(self.exec_median_s.ln(), self.exec_sigma)
                    .clamp(0.001, 600.0)
            })
            .collect()
    }

    /// Samples normalized per-workload traffic shares (descending), the
    /// series behind Fig. 15. Timer-triggered workloads cluster at a few
    /// canonical volumes, creating the CDF jumps Huawei's datasets show.
    pub fn sample_traffic_shares(&self, rng: &mut Rng) -> Vec<f64> {
        let zipf = Zipf::new(self.n_apps, self.zipf_s);
        let timer_volumes = [86_400.0, 1_440.0, 288.0];
        let mut volumes: Vec<f64> = (0..self.n_apps)
            .map(|rank| {
                if rng.chance(self.timer_fraction) {
                    // Period classes: per-second, per-minute, per-5-min.
                    timer_volumes[rng.index(timer_volumes.len())]
                        * self.duration_days as f64
                } else {
                    self.total_invocations * zipf.pmf(rank)
                        * rng.lognormal(0.0, 0.4)
                }
            })
            .collect();
        volumes.sort_by(|a, b| b.partial_cmp(a).expect("finite volumes"));
        let max = volumes[0];
        volumes.iter().map(|v| v / max).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::desc::{fraction_where, median};

    #[test]
    fn newer_datasets_have_shorter_execs() {
        let mut rng = Rng::seed_from_u64(1);
        let old = azure19().sample_app_exec_means(&mut rng);
        let new = huawei24().sample_app_exec_means(&mut rng);
        let ibm_exec = ibm().sample_app_exec_means(&mut rng);
        assert!(median(&new).unwrap() < median(&old).unwrap());
        assert!(median(&ibm_exec).unwrap() < median(&old).unwrap());
    }

    #[test]
    fn azure19_sub_second_fraction() {
        let mut rng = Rng::seed_from_u64(2);
        let execs = azure19().sample_app_exec_means(&mut rng);
        let frac = fraction_where(&execs, |x| x < 1.0);
        assert!((frac - 0.70).abs() < 0.06, "fraction {frac}");
    }

    #[test]
    fn traffic_shares_normalized_and_sorted() {
        let mut rng = Rng::seed_from_u64(3);
        for preset in all_presets() {
            let shares = preset.sample_traffic_shares(&mut rng);
            assert_eq!(shares.len(), preset.n_apps);
            assert!((shares[0] - 1.0).abs() < 1e-12);
            assert!(shares.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn ibm_has_more_mid_popularity_workloads() {
        // App. B.1: IBM has over 30 workloads at >= 10 % of the top
        // workload's traffic, more than the other datasets.
        let mut rng = Rng::seed_from_u64(4);
        let mut count_ge_10pct = |preset: &DatasetPreset| {
            preset
                .sample_traffic_shares(&mut rng)
                .iter()
                .filter(|s| **s >= 0.1)
                .count()
        };
        let ibm_count = count_ge_10pct(&ibm());
        let azure_count = count_ge_10pct(&azure19());
        let huawei_count = count_ge_10pct(&huawei24());
        assert!(
            ibm_count > azure_count,
            "ibm {ibm_count} azure {azure_count}"
        );
        assert!(
            ibm_count > huawei_count,
            "ibm {ibm_count} huawei {huawei_count}"
        );
        assert!(ibm_count >= 15, "ibm {ibm_count}");
    }

    #[test]
    fn huawei_shares_show_timer_clusters() {
        let mut rng = Rng::seed_from_u64(5);
        let shares = huawei24().sample_traffic_shares(&mut rng);
        // Timer workloads create repeated identical share values.
        let mut dupes = 0;
        for w in shares.windows(2) {
            if (w[0] - w[1]).abs() < 1e-12 && w[0] > 0.0 {
                dupes += 1;
            }
        }
        assert!(dupes > 50, "only {dupes} duplicated shares");
    }
}

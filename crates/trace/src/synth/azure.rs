//! Synthetic "Azure Functions 2019" fleet.
//!
//! The paper's §5.1 evaluation runs FeMux and every baseline on the Azure
//! 2019 dataset: per-minute invocation counts for 14 days, daily per-app
//! average execution times, and daily app memory. This generator produces
//! a fleet with the same schema and the published shape: Zipf-skewed
//! popularity, ~78 % of apps with IAT CV > 1, ~70 % of apps with
//! sub-second average executions, and a class mix (periodic, bursty,
//! steady, sporadic, trending) that gives the forecaster-multiplexing
//! question substance — different classes genuinely favour different
//! forecasters.

use femux_stats::rng::Rng;

use crate::types::{
    AppConfig, AppId, AppRecord, Invocation, Trace, WorkloadKind,
    MS_PER_DAY, MS_PER_MIN,
};

/// Minutes per day.
pub const MINUTES_PER_DAY: usize = 1_440;

/// Traffic-shape class of a synthetic Azure application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AzureClass {
    /// Daily-periodic traffic (office-hours style).
    PeriodicDaily,
    /// Short-period oscillation (tens of minutes to hours).
    PeriodicShort,
    /// Approximately constant rate.
    Steady,
    /// ON/OFF bursts separated by quiet stretches.
    Bursty,
    /// Rare, irregular invocations.
    Sporadic,
    /// Slowly growing baseline.
    Trending,
}

/// One synthetic Azure application: minute-resolution counts plus the
/// daily metadata the real dataset carries.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureApp {
    /// Application identity.
    pub id: AppId,
    /// Ground-truth traffic class (not visible to FeMux; used by tests
    /// and ablations).
    pub class: AzureClass,
    /// Invocations per minute over the whole span.
    pub minute_counts: Vec<u32>,
    /// Average execution time in milliseconds (per day, as in the real
    /// dataset's daily statistics).
    pub daily_avg_exec_ms: Vec<f64>,
    /// Allocated/consumed memory per app in MB.
    pub mem_mb: u32,
}

impl AzureApp {
    /// Returns the total invocation count.
    pub fn total_invocations(&self) -> u64 {
        self.minute_counts.iter().map(|&c| c as u64).sum()
    }

    /// Returns the execution time (ms) in effect at a given minute.
    pub fn exec_ms_at_minute(&self, minute: usize) -> f64 {
        let day = (minute / MINUTES_PER_DAY)
            .min(self.daily_avg_exec_ms.len().saturating_sub(1));
        self.daily_avg_exec_ms[day]
    }

    /// Converts per-minute counts into Knative-style average concurrency
    /// per minute: `count * exec_seconds / 60`.
    pub fn concurrency_series(&self) -> Vec<f64> {
        self.minute_counts
            .iter()
            .enumerate()
            .map(|(m, &c)| {
                c as f64 * (self.exec_ms_at_minute(m) / 1_000.0) / 60.0
            })
            .collect()
    }
}

/// Configuration for the Azure-like fleet generator.
#[derive(Debug, Clone)]
pub struct AzureFleetConfig {
    /// Number of applications.
    pub n_apps: usize,
    /// Span in days (the real dataset has 14; evaluations use 12).
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
    /// Global multiplier on arrival rates (volume scaling).
    pub rate_scale: f64,
}

impl Default for AzureFleetConfig {
    fn default() -> Self {
        AzureFleetConfig {
            n_apps: 1_000,
            days: 14,
            seed: 0xA2E,
            rate_scale: 1.0,
        }
    }
}

impl AzureFleetConfig {
    /// A reduced fleet for tests.
    pub fn small(seed: u64) -> Self {
        AzureFleetConfig {
            n_apps: 60,
            days: 4,
            seed,
            rate_scale: 0.5,
        }
    }
}

/// The synthetic fleet.
#[derive(Debug, Clone)]
pub struct AzureFleet {
    /// Per-application records.
    pub apps: Vec<AzureApp>,
    /// Span in days.
    pub days: usize,
}

fn pick_class(rng: &mut Rng) -> AzureClass {
    let weights = [0.15, 0.08, 0.10, 0.27, 0.35, 0.05];
    match rng.weighted_index(&weights) {
        0 => AzureClass::PeriodicDaily,
        1 => AzureClass::PeriodicShort,
        2 => AzureClass::Steady,
        3 => AzureClass::Bursty,
        4 => AzureClass::Sporadic,
        _ => AzureClass::Trending,
    }
}

/// Rate (invocations/minute) of an app at a given minute.
#[expect(clippy::too_many_arguments)]
fn rate_at(
    class: AzureClass,
    base: f64,
    minute: usize,
    total_minutes: usize,
    phase: f64,
    period_min: f64,
    burst_state: &mut BurstState,
    rng: &mut Rng,
) -> f64 {
    match class {
        AzureClass::PeriodicDaily => {
            let frac = (minute % MINUTES_PER_DAY) as f64
                / MINUTES_PER_DAY as f64;
            base * (1.0
                + 0.9
                    * (2.0 * std::f64::consts::PI * (frac - phase)).cos())
            .max(0.0)
        }
        AzureClass::PeriodicShort => {
            let frac = minute as f64 / period_min;
            base * (1.0
                + 0.95 * (2.0 * std::f64::consts::PI * frac + phase).cos())
            .max(0.0)
        }
        AzureClass::Steady => base,
        AzureClass::Bursty => {
            burst_state.step(rng);
            if burst_state.on {
                base * 20.0
            } else {
                base * 0.05
            }
        }
        AzureClass::Sporadic => base,
        AzureClass::Trending => {
            base * (0.4 + 1.2 * minute as f64 / total_minutes as f64)
        }
    }
}

/// Minute-domain two-state burst process.
#[derive(Debug)]
struct BurstState {
    on: bool,
    p_start: f64,
    p_stop: f64,
}

impl BurstState {
    fn step(&mut self, rng: &mut Rng) {
        if self.on {
            if rng.chance(self.p_stop) {
                self.on = false;
            }
        } else if rng.chance(self.p_start) {
            self.on = true;
        }
    }
}

/// Generates an Azure-like fleet.
pub fn generate(cfg: &AzureFleetConfig) -> AzureFleet {
    let mut master = Rng::seed_from_u64(cfg.seed);
    let total_minutes = cfg.days * MINUTES_PER_DAY;
    let mut apps = Vec::with_capacity(cfg.n_apps);
    for i in 0..cfg.n_apps {
        let mut rng = master.fork();
        let class = pick_class(&mut rng);
        // Zipf-flavoured base rate: log-uniform across four decades,
        // giving the heavy popularity skew of the real fleet.
        let base = cfg.rate_scale
            * match class {
                AzureClass::Sporadic => rng.lognormal((0.01f64).ln(), 1.0),
                _ => (10.0f64).powf(rng.range_f64(-2.0, 1.6)),
            };
        let phase = rng.range_f64(0.0, 1.0);
        let period_min = rng.range_f64(30.0, 240.0);
        let mut burst = BurstState {
            on: rng.chance(0.2),
            p_start: 1.0 / rng.range_f64(30.0, 480.0),
            p_stop: 1.0 / rng.range_f64(5.0, 60.0),
        };
        let mut counts = Vec::with_capacity(total_minutes);
        for minute in 0..total_minutes {
            let lambda = rate_at(
                class,
                base,
                minute,
                total_minutes,
                phase,
                period_min,
                &mut burst,
                &mut rng,
            );
            counts.push(rng.poisson(lambda).min(u32::MAX as u64) as u32);
        }
        // Daily average execution: drawn once per app with small daily
        // wobble; median of per-app means ~450 ms => ~70 % sub-second.
        let app_exec = rng.lognormal((450.0f64).ln(), 1.5).clamp(1.0, 60_000.0);
        let daily_avg_exec_ms: Vec<f64> = (0..cfg.days)
            .map(|_| (app_exec * rng.lognormal(0.0, 0.1)).clamp(1.0, 60_000.0))
            .collect();
        let mem_mb =
            rng.lognormal((150.0f64).ln(), 0.8).clamp(32.0, 4_096.0) as u32;
        apps.push(AzureApp {
            id: AppId(i as u32),
            class,
            minute_counts: counts,
            daily_avg_exec_ms,
            mem_mb,
        });
    }
    femux_obs::counter_add("trace.synth.azure.apps", apps.len() as u64);
    AzureFleet {
        apps,
        days: cfg.days,
    }
}

impl AzureFleet {
    /// Materializes the fleet as a millisecond [`Trace`], distributing
    /// each minute's invocations uniformly within the minute (the paper's
    /// replay convention) and applying the app's daily execution time.
    pub fn to_trace(&self) -> Trace {
        let span_ms = self.days as u64 * MS_PER_DAY;
        let mut trace = Trace::new(span_ms);
        for app in &self.apps {
            let mut invocations = Vec::new();
            for (minute, &count) in app.minute_counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let base = minute as u64 * MS_PER_MIN;
                let n = count as u64;
                let exec = app.exec_ms_at_minute(minute).max(1.0) as u32;
                for k in 0..n {
                    let offset = (2 * k + 1) * MS_PER_MIN / (2 * n);
                    invocations.push(Invocation {
                        start_ms: base + offset,
                        duration_ms: exec,
                        delay_ms: 0,
                    });
                }
            }
            trace.apps.push(AppRecord {
                id: app.id,
                kind: WorkloadKind::Application,
                config: AppConfig {
                    mem_mb: app.mem_mb,
                    concurrency: 1,
                    ..AppConfig::default()
                },
                mem_used_mb: app.mem_mb,
                cold_start_ms: 808,
                invocations,
            });
        }
        trace
    }

    /// Returns total invocations across the fleet.
    pub fn total_invocations(&self) -> u64 {
        self.apps.iter().map(|a| a.total_invocations()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::desc::fraction_where;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(&AzureFleetConfig::small(1));
        let b = generate(&AzureFleetConfig::small(1));
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.apps.len(), 60);
        assert_eq!(a.apps[0].minute_counts.len(), 4 * MINUTES_PER_DAY);
    }

    #[test]
    fn exec_time_marginal() {
        let fleet = generate(&AzureFleetConfig {
            n_apps: 800,
            days: 2,
            seed: 2,
            rate_scale: 0.1,
        });
        let means: Vec<f64> = fleet
            .apps
            .iter()
            .map(|a| {
                a.daily_avg_exec_ms.iter().sum::<f64>()
                    / a.daily_avg_exec_ms.len() as f64
                    / 1_000.0
            })
            .collect();
        let sub_second = fraction_where(&means, |x| x < 1.0);
        assert!(
            (sub_second - 0.70).abs() < 0.08,
            "sub-second fraction {sub_second}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let fleet = generate(&AzureFleetConfig {
            n_apps: 400,
            days: 2,
            seed: 3,
            rate_scale: 1.0,
        });
        let mut volumes: Vec<u64> =
            fleet.apps.iter().map(|a| a.total_invocations()).collect();
        volumes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = volumes.iter().sum();
        let top_decile: u64 = volumes[..40].iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top 10% hold {} of traffic",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn periodic_apps_show_daily_cycle() {
        let fleet = generate(&AzureFleetConfig {
            n_apps: 200,
            days: 4,
            seed: 4,
            rate_scale: 1.0,
        });
        let app = fleet
            .apps
            .iter()
            .find(|a| {
                a.class == AzureClass::PeriodicDaily
                    && a.total_invocations() > 5_000
            })
            .expect("a busy periodic app exists");
        // Fold onto a day and compare peak vs trough thirds.
        let mut folded = vec![0u64; MINUTES_PER_DAY];
        for (m, &c) in app.minute_counts.iter().enumerate() {
            folded[m % MINUTES_PER_DAY] += c as u64;
        }
        let max = *folded.iter().max().expect("non-empty");
        let min = *folded.iter().min().expect("non-empty");
        assert!(max > 3 * (min + 1), "max {max} min {min}");
    }

    #[test]
    fn trending_apps_grow() {
        let fleet = generate(&AzureFleetConfig {
            n_apps: 300,
            days: 4,
            seed: 5,
            rate_scale: 1.0,
        });
        let app = fleet
            .apps
            .iter()
            .find(|a| {
                a.class == AzureClass::Trending
                    && a.total_invocations() > 2_000
            })
            .expect("a busy trending app exists");
        let half = app.minute_counts.len() / 2;
        let first: u64 =
            app.minute_counts[..half].iter().map(|&c| c as u64).sum();
        let second: u64 =
            app.minute_counts[half..].iter().map(|&c| c as u64).sum();
        assert!(second > first, "first {first} second {second}");
    }

    #[test]
    fn to_trace_preserves_counts() {
        let fleet = generate(&AzureFleetConfig::small(6));
        let trace = fleet.to_trace();
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_invocations(), fleet.total_invocations());
    }

    #[test]
    fn concurrency_series_scales_with_exec() {
        let app = AzureApp {
            id: AppId(0),
            class: AzureClass::Steady,
            minute_counts: vec![60, 120],
            daily_avg_exec_ms: vec![1_000.0],
            mem_mb: 128,
        };
        let conc = app.concurrency_series();
        // 60 invocations of 1 s in a minute = concurrency 1.
        assert!((conc[0] - 1.0).abs() < 1e-9);
        assert!((conc[1] - 2.0).abs() < 1e-9);
    }
}

//! Arrival-process generators.
//!
//! Each serverless application in the synthetic fleets draws one of these
//! traffic shapes. The catalogue mirrors the behaviours the paper's
//! characterization highlights: steady sub-second traffic, diurnal/weekly
//! periodicity with seasonal drift (Fig. 1, Fig. 16), intermittent ON/OFF
//! bursts (CV > 1 for 96 % of workloads), timer-driven fixed-period
//! triggers (dominant in Huawei's fleet), and sporadic low-volume apps.

use femux_stats::rng::Rng;

use crate::types::{MS_PER_DAY, MS_PER_HOUR};

/// A stochastic arrival process over a finite span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals at `rate_per_sec`.
    Steady {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Inhomogeneous Poisson with daily and weekly modulation plus a
    /// linear seasonal ramp, matching the fleet-level shape of Fig. 1.
    Diurnal {
        /// Baseline arrivals per second.
        base_rate: f64,
        /// Relative amplitude of the daily cycle in `[0, 1]`.
        daily_amp: f64,
        /// Multiplier applied on weekends (e.g. 0.6).
        weekend_factor: f64,
        /// Total relative traffic growth across the span (e.g. 0.2 for a
        /// 20 % ramp, the "January effect").
        ramp: f64,
        /// Phase offset of the daily peak in hours.
        peak_hour: f64,
    },
    /// Two-state ON/OFF process: exponential ON periods with Poisson
    /// arrivals, exponential OFF periods with none.
    OnOff {
        /// Arrivals per second while ON.
        on_rate: f64,
        /// Mean ON duration in seconds.
        mean_on_secs: f64,
        /// Mean OFF duration in seconds.
        mean_off_secs: f64,
    },
    /// Fixed-period timer triggers with bounded jitter.
    Timer {
        /// Trigger period in seconds.
        period_secs: f64,
        /// Uniform jitter applied to each trigger, in milliseconds.
        jitter_ms: u64,
    },
    /// Markov-modulated Poisson process with a quiet base rate and rare
    /// high-rate bursts — the bursty shape serverless schedulers dread.
    Bursty {
        /// Arrivals per second in the quiet state.
        base_rate: f64,
        /// Arrivals per second during a burst.
        burst_rate: f64,
        /// Mean burst duration in seconds.
        mean_burst_secs: f64,
        /// Mean quiet-gap duration in seconds.
        mean_gap_secs: f64,
    },
}

impl ArrivalPattern {
    /// Returns an upper bound on the instantaneous rate (per second),
    /// used by the thinning sampler.
    fn max_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Diurnal {
                base_rate,
                daily_amp,
                ramp,
                ..
            } => base_rate * (1.0 + daily_amp) * (1.0 + ramp.max(0.0)),
            ArrivalPattern::OnOff { on_rate, .. } => on_rate,
            ArrivalPattern::Timer { period_secs, .. } => 1.0 / period_secs,
            ArrivalPattern::Bursty {
                base_rate,
                burst_rate,
                ..
            } => base_rate.max(burst_rate),
        }
    }

    /// Returns the instantaneous rate at `t_ms` for rate-modulated
    /// patterns (`Steady`, `Diurnal`); other patterns are generated
    /// directly.
    fn rate_at(&self, t_ms: u64, span_ms: u64) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Diurnal {
                base_rate,
                daily_amp,
                weekend_factor,
                ramp,
                peak_hour,
            } => {
                let day_frac =
                    (t_ms % MS_PER_DAY) as f64 / MS_PER_DAY as f64;
                let peak_frac = peak_hour / 24.0;
                let daily = 1.0
                    + daily_amp
                        * (2.0 * std::f64::consts::PI
                            * (day_frac - peak_frac))
                            .cos();
                let day_index = t_ms / MS_PER_DAY;
                // Day 0 is a Monday; days 5 and 6 of each week are the
                // weekend.
                let weekly = if day_index % 7 >= 5 {
                    weekend_factor
                } else {
                    1.0
                };
                let progress = t_ms as f64 / span_ms.max(1) as f64;
                base_rate * daily * weekly * (1.0 + ramp * progress)
            }
            // audit:allow(panic-path, reason = "internal invariant: rate_at is only called from generate() on the rate-modulated arms matched above")
            _ => unreachable!("rate_at only for rate-modulated patterns"),
        }
    }

    /// Generates arrival timestamps (ms, sorted, within `[0, span_ms)`).
    ///
    /// `cap` bounds the number of generated arrivals so that heavy-traffic
    /// applications cannot exhaust memory; generation stops at the cap.
    pub fn generate(
        &self,
        span_ms: u64,
        cap: usize,
        rng: &mut Rng,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        match *self {
            ArrivalPattern::Steady { .. }
            | ArrivalPattern::Diurnal { .. } => {
                // Ogata thinning against the max-rate envelope.
                let lambda_max = self.max_rate();
                if lambda_max <= 0.0 {
                    return out;
                }
                let mut t = 0.0f64; // seconds
                let span_s = span_ms as f64 / 1_000.0;
                while out.len() < cap {
                    t += rng.exp(lambda_max);
                    if t >= span_s {
                        break;
                    }
                    let t_ms = (t * 1_000.0) as u64;
                    let accept =
                        self.rate_at(t_ms, span_ms) / lambda_max;
                    if rng.chance(accept) {
                        out.push(t_ms);
                    }
                }
            }
            ArrivalPattern::OnOff {
                on_rate,
                mean_on_secs,
                mean_off_secs,
            } => gen_two_state(
                span_ms,
                cap,
                rng,
                on_rate,
                0.0,
                mean_on_secs,
                mean_off_secs,
                &mut out,
            ),
            ArrivalPattern::Bursty {
                base_rate,
                burst_rate,
                mean_burst_secs,
                mean_gap_secs,
            } => gen_two_state(
                span_ms,
                cap,
                rng,
                burst_rate,
                base_rate,
                mean_burst_secs,
                mean_gap_secs,
                &mut out,
            ),
            ArrivalPattern::Timer {
                period_secs,
                jitter_ms,
            } => {
                let period_ms = (period_secs * 1_000.0).max(1.0) as u64;
                let mut t = period_ms / 2;
                while t < span_ms && out.len() < cap {
                    let jitter = if jitter_ms > 0 {
                        rng.below(2 * jitter_ms + 1) as i64
                            - jitter_ms as i64
                    } else {
                        0
                    };
                    let stamp = t.saturating_add_signed(jitter);
                    if stamp < span_ms {
                        out.push(stamp);
                    }
                    t += period_ms;
                }
                out.sort_unstable();
            }
        }
        out
    }
}

/// Generates arrivals for a two-state modulated Poisson process: the
/// "high" state emits at `high_rate` for exp(`mean_high_secs`) stretches,
/// the "low" state at `low_rate` for exp(`mean_low_secs`) stretches.
#[expect(clippy::too_many_arguments)]
fn gen_two_state(
    span_ms: u64,
    cap: usize,
    rng: &mut Rng,
    high_rate: f64,
    low_rate: f64,
    mean_high_secs: f64,
    mean_low_secs: f64,
    out: &mut Vec<u64>,
) {
    let span_s = span_ms as f64 / 1_000.0;
    let mut t = 0.0f64;
    let mut high = rng.chance(0.5);
    while t < span_s && out.len() < cap {
        let (rate, mean_stay) = if high {
            (high_rate, mean_high_secs)
        } else {
            (low_rate, mean_low_secs)
        };
        let stay = rng.exp(1.0 / mean_stay.max(1e-9));
        let state_end = (t + stay).min(span_s);
        if rate > 0.0 {
            let mut s = t;
            loop {
                s += rng.exp(rate);
                if s >= state_end || out.len() >= cap {
                    break;
                }
                out.push((s * 1_000.0) as u64);
            }
        }
        t = state_end;
        high = !high;
    }
}

/// Convenience: expected daily arrival counts for a pattern, computed by
/// numerically integrating the rate function in hourly slices. Used by the
/// cheap fleet-level daily-traffic figures (Fig. 1, Fig. 16) that must not
/// materialize billions of invocations.
pub fn expected_daily_counts(
    pattern: &ArrivalPattern,
    span_ms: u64,
) -> Vec<f64> {
    let days = span_ms.div_ceil(MS_PER_DAY) as usize;
    let mut out = vec![0.0; days];
    match pattern {
        ArrivalPattern::Steady { .. } | ArrivalPattern::Diurnal { .. } => {
            for (d, slot) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for h in 0..24 {
                    let t = d as u64 * MS_PER_DAY
                        + h * MS_PER_HOUR
                        + MS_PER_HOUR / 2;
                    if t < span_ms {
                        acc += pattern.rate_at(t, span_ms) * 3_600.0;
                    }
                }
                *slot = acc;
            }
        }
        ArrivalPattern::OnOff {
            on_rate,
            mean_on_secs,
            mean_off_secs,
        } => {
            let duty = mean_on_secs / (mean_on_secs + mean_off_secs);
            out.fill(on_rate * duty * 86_400.0);
        }
        ArrivalPattern::Bursty {
            base_rate,
            burst_rate,
            mean_burst_secs,
            mean_gap_secs,
        } => {
            let duty = mean_burst_secs / (mean_burst_secs + mean_gap_secs);
            out.fill(
                (burst_rate * duty + base_rate * (1.0 - duty)) * 86_400.0,
            );
        }
        ArrivalPattern::Timer { period_secs, .. } => {
            out.fill(86_400.0 / period_secs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::desc::{coefficient_of_variation, mean};

    #[test]
    fn steady_rate_matches() {
        let mut rng = Rng::seed_from_u64(1);
        let pat = ArrivalPattern::Steady { rate_per_sec: 5.0 };
        let arrivals = pat.generate(100_000, usize::MAX, &mut rng);
        // 100 s at 5/s: expect ~500.
        assert!((arrivals.len() as f64 - 500.0).abs() < 80.0);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cap_is_respected() {
        let mut rng = Rng::seed_from_u64(2);
        let pat = ArrivalPattern::Steady { rate_per_sec: 100.0 };
        let arrivals = pat.generate(1_000_000, 50, &mut rng);
        assert_eq!(arrivals.len(), 50);
    }

    #[test]
    fn diurnal_peaks_at_configured_hour() {
        let mut rng = Rng::seed_from_u64(3);
        let pat = ArrivalPattern::Diurnal {
            base_rate: 2.0,
            daily_amp: 0.8,
            weekend_factor: 1.0,
            ramp: 0.0,
            peak_hour: 12.0,
        };
        let arrivals = pat.generate(MS_PER_DAY, usize::MAX, &mut rng);
        let mut hourly = [0u32; 24];
        for a in &arrivals {
            hourly[(a / MS_PER_HOUR) as usize] += 1;
        }
        let noon = hourly[11] + hourly[12];
        let midnight = hourly[0] + hourly[23];
        assert!(noon > 2 * midnight, "noon {noon} vs midnight {midnight}");
    }

    #[test]
    fn diurnal_weekend_dip() {
        let pat = ArrivalPattern::Diurnal {
            base_rate: 1.0,
            daily_amp: 0.0,
            weekend_factor: 0.4,
            ramp: 0.0,
            peak_hour: 12.0,
        };
        let span = 7 * MS_PER_DAY;
        let daily = expected_daily_counts(&pat, span);
        // Days 5, 6 are the weekend.
        assert!(daily[5] < 0.5 * daily[0]);
        assert!((daily[0] - 86_400.0).abs() < 1.0);
    }

    #[test]
    fn ramp_grows_traffic() {
        let pat = ArrivalPattern::Diurnal {
            base_rate: 1.0,
            daily_amp: 0.0,
            weekend_factor: 1.0,
            ramp: 0.5,
            peak_hour: 0.0,
        };
        let daily = expected_daily_counts(&pat, 14 * MS_PER_DAY);
        assert!(daily[13] > daily[0] * 1.3);
    }

    #[test]
    fn onoff_is_highly_variable() {
        let mut rng = Rng::seed_from_u64(4);
        let pat = ArrivalPattern::OnOff {
            on_rate: 10.0,
            mean_on_secs: 30.0,
            mean_off_secs: 600.0,
        };
        let arrivals = pat.generate(86_400_000, usize::MAX, &mut rng);
        assert!(arrivals.len() > 100);
        let iats: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1_000.0)
            .collect();
        assert!(
            coefficient_of_variation(&iats) > 1.0,
            "CV {}",
            coefficient_of_variation(&iats)
        );
    }

    #[test]
    fn timer_period_is_tight() {
        let mut rng = Rng::seed_from_u64(5);
        let pat = ArrivalPattern::Timer {
            period_secs: 60.0,
            jitter_ms: 100,
        };
        let arrivals = pat.generate(3_600_000, usize::MAX, &mut rng);
        assert_eq!(arrivals.len(), 60);
        let iats: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1_000.0)
            .collect();
        assert!((mean(&iats) - 60.0).abs() < 0.5);
        assert!(coefficient_of_variation(&iats) < 0.1);
    }

    #[test]
    fn bursty_mixes_rates() {
        let mut rng = Rng::seed_from_u64(6);
        let pat = ArrivalPattern::Bursty {
            base_rate: 0.1,
            burst_rate: 20.0,
            mean_burst_secs: 10.0,
            mean_gap_secs: 300.0,
        };
        let arrivals = pat.generate(6 * 3_600_000, usize::MAX, &mut rng);
        let expected = expected_daily_counts(&pat, MS_PER_DAY)[0] / 4.0;
        assert!(
            (arrivals.len() as f64) > expected * 0.4
                && (arrivals.len() as f64) < expected * 2.5,
            "got {} expected ~{expected}",
            arrivals.len()
        );
    }

    #[test]
    fn expected_counts_match_simulation_for_steady() {
        let mut rng = Rng::seed_from_u64(7);
        let pat = ArrivalPattern::Steady { rate_per_sec: 2.0 };
        let expected = expected_daily_counts(&pat, MS_PER_DAY)[0];
        let actual =
            pat.generate(MS_PER_DAY, usize::MAX, &mut rng).len() as f64;
        assert!((actual - expected).abs() / expected < 0.05);
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut rng = Rng::seed_from_u64(8);
        let pat = ArrivalPattern::Steady { rate_per_sec: 0.0 };
        assert!(pat.generate(MS_PER_DAY, usize::MAX, &mut rng).is_empty());
    }
}

//! Synthetic trace generation.
//!
//! These generators substitute for production datasets that cannot be
//! shipped (see `DESIGN.md`): a calibrated IBM Cloud Code Engine fleet
//! ([`ibm`]), an Azure Functions 2019 fleet ([`azure`]) for the §5.1
//! evaluation, the underlying arrival-process catalogue ([`patterns`]),
//! and statistical sketches of prior public datasets ([`compare`]) for
//! the cross-dataset figures.

pub mod azure;
pub mod compare;
pub mod ibm;
pub mod patterns;

//! Synthetic "IBM Cloud Code Engine" fleet.
//!
//! Stands in for the paper's production trace (1.9 B invocations, 62 days,
//! 1,283 workloads). The generator is calibrated to the published
//! marginals so every §3 characterization figure can be regenerated:
//!
//! - ≈94.5 % of invocation IATs sub-second; ≈86 % of workloads with
//!   sub-minute median IAT; CV > 1 for ≈96 % of workloads (§3.2),
//! - ≈82 % of workloads with sub-second mean execution; median of per-app
//!   mean ≈ 10 ms vs median of per-app p99 ≈ 800 ms (Fig. 3, Fig. 4),
//! - platform delays mostly < 1 ms with ≈20 % of workloads above 1 s at
//!   p99 and extremes past 100 s (Fig. 6),
//! - the Fig. 7 configuration marginals for CPU, memory, minimum scale,
//!   and container concurrency,
//! - weekday/weekend peak-to-trough and a January traffic ramp (Fig. 1).
//!
//! Volumes are scaled down (a laptop cannot hold 1.9 B invocation
//! records); all reported statistics are fractions, which survive the
//! scale-down.

use femux_stats::rng::Rng;

use crate::synth::patterns::{expected_daily_counts, ArrivalPattern};
use crate::types::{
    AppConfig, AppId, AppRecord, Invocation, Trace, WorkloadKind, MS_PER_DAY,
};

/// Traffic archetype assigned to an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    HeavyDiurnal,
    SteadyMedium,
    BurstyOnOff,
    Timer,
    Sporadic,
}

/// Configuration for the IBM-like fleet generator.
#[derive(Debug, Clone)]
pub struct IbmFleetConfig {
    /// Number of workloads (paper: 1,283).
    pub n_apps: usize,
    /// Trace span in days (paper: 62).
    pub span_days: u64,
    /// RNG seed; the same seed regenerates the identical fleet.
    pub seed: u64,
    /// Hard cap on invocations materialized per application.
    pub max_invocations_per_app: usize,
    /// Multiplier on every arrival rate, used to scale total volume down
    /// from production levels while preserving all fractions.
    pub rate_scale: f64,
}

impl Default for IbmFleetConfig {
    fn default() -> Self {
        IbmFleetConfig {
            n_apps: 1_283,
            span_days: 62,
            seed: 0xB0B5,
            max_invocations_per_app: 100_000,
            rate_scale: 1.0,
        }
    }
}

impl IbmFleetConfig {
    /// A reduced fleet that generates in well under a second, for tests
    /// and examples.
    pub fn small(seed: u64) -> Self {
        IbmFleetConfig {
            n_apps: 120,
            span_days: 3,
            seed,
            max_invocations_per_app: 20_000,
            rate_scale: 0.05,
        }
    }
}

fn pick_archetype(rng: &mut Rng) -> Archetype {
    // Mix chosen to land the §3.2 IAT marginals (see module docs).
    let weights = [0.08, 0.22, 0.53, 0.05, 0.12];
    match rng.weighted_index(&weights) {
        0 => Archetype::HeavyDiurnal,
        1 => Archetype::SteadyMedium,
        2 => Archetype::BurstyOnOff,
        3 => Archetype::Timer,
        _ => Archetype::Sporadic,
    }
}

fn pattern_for(
    arch: Archetype,
    scale: f64,
    rng: &mut Rng,
) -> ArrivalPattern {
    match arch {
        Archetype::HeavyDiurnal => ArrivalPattern::Diurnal {
            base_rate: scale * rng.lognormal((15.0f64).ln(), 1.0),
            daily_amp: rng.range_f64(0.3, 0.6),
            weekend_factor: rng.range_f64(0.5, 0.8),
            ramp: rng.range_f64(0.0, 0.4),
            peak_hour: rng.range_f64(9.0, 17.0),
        },
        Archetype::SteadyMedium => {
            // Steady traffic with overdispersion: production IATs are
            // over-dispersed even for "steady" apps (96 % of workloads
            // have CV > 1), so the steady tier carries a persistent base
            // rate plus occasional multiplicative bursts.
            let base = scale * rng.lognormal((2.0f64).ln(), 1.0);
            ArrivalPattern::Bursty {
                base_rate: base,
                burst_rate: base * rng.range_f64(5.0, 15.0),
                mean_burst_secs: rng.range_f64(30.0, 300.0),
                mean_gap_secs: rng.range_f64(600.0, 3_600.0),
            }
        }
        Archetype::BurstyOnOff => ArrivalPattern::OnOff {
            // Burst rate is deliberately NOT scaled down: within-burst
            // IATs must stay sub-second for the §3.2 marginals. Volume is
            // controlled by stretching the OFF periods instead.
            on_rate: rng.lognormal((8.0f64).ln(), 0.9),
            mean_on_secs: rng.range_f64(10.0, 120.0),
            mean_off_secs: rng.range_f64(300.0, 7_200.0) / scale.max(1e-6),
        },
        Archetype::Timer => {
            let choices = [5.0, 10.0, 30.0, 30.0, 60.0, 600.0];
            ArrivalPattern::Timer {
                period_secs: choices[rng.index(choices.len())],
                jitter_ms: 200,
            }
        }
        Archetype::Sporadic => ArrivalPattern::OnOff {
            // Rare activity arrives in short clusters (retries, manual
            // testing, fan-out events), not as a smooth trickle.
            on_rate: rng.range_f64(0.2, 2.0),
            mean_on_secs: rng.range_f64(5.0, 60.0),
            mean_off_secs: rng.range_f64(1_800.0, 14_400.0),
        },
    }
}

/// Samples a Fig. 7-calibrated configuration.
fn sample_config(rng: &mut Rng) -> AppConfig {
    // CPU: 44.8 % below 1 vCPU, 50.8 % default, 4.4 % above (up to 8).
    let cpu_milli = match rng.weighted_index(&[0.448, 0.508, 0.044]) {
        0 => *[125u32, 250, 500].get(rng.index(3)).expect("in range"),
        1 => 1_000,
        _ => *[2_000u32, 4_000, 8_000].get(rng.index(3)).expect("in range"),
    };
    // Memory: 53.6 % below 4 GB, 41.9 % default, 4.5 % above (up to 48).
    let mem_mb = match rng.weighted_index(&[0.536, 0.419, 0.045]) {
        0 => *[256u32, 512, 1_024, 2_048]
            .get(rng.index(4))
            .expect("in range"),
        1 => 4_096,
        _ => *[8_192u32, 16_384, 49_152]
            .get(rng.index(3))
            .expect("in range"),
    };
    // Minimum scale: 41.2 % zero, 53.8 % one, 4.9 % two or more.
    let min_scale = match rng.weighted_index(&[0.412, 0.538, 0.049]) {
        0 => 0,
        1 => 1,
        _ => 2 + rng.below(4) as u32,
    };
    // Concurrency: 93.3 % default 100, 3.2 % above (to 1000), rest below.
    let concurrency = match rng.weighted_index(&[0.933, 0.032, 0.035]) {
        0 => 100,
        1 => *[200u32, 500, 1_000].get(rng.index(3)).expect("in range"),
        _ => *[1u32, 10, 50].get(rng.index(3)).expect("in range"),
    };
    AppConfig {
        cpu_milli,
        mem_mb,
        concurrency,
        min_scale,
    }
}

/// Per-app execution-duration model: a light lognormal body plus a rare
/// heavy mode (slow paths, downstream timeouts). The mixture is what
/// lets the fleet match the paper's Fig. 4 jointly: median of per-app
/// *means* ≈ 10-30 ms while the median of per-app *p99s* ≈ 800 ms — a
/// ratio no single lognormal can reach.
#[derive(Debug, Clone, Copy)]
struct ExecModel {
    mu_ln_ms: f64,
    sigma: f64,
    heavy_prob: f64,
    heavy_mult: f64,
}

fn sample_exec_model(kind: WorkloadKind, rng: &mut Rng) -> ExecModel {
    match kind {
        WorkloadKind::BatchJob => ExecModel {
            // Batch jobs run seconds to minutes.
            mu_ln_ms: rng.range_f64((5_000.0f64).ln(), (120_000.0f64).ln()),
            sigma: rng.range_f64(0.4, 1.0),
            heavy_prob: 0.0,
            heavy_mult: 1.0,
        },
        _ => ExecModel {
            // Across-app spread of 4.0 lands ~82-86 % of apps with
            // sub-second mean execution (§3.2).
            mu_ln_ms: rng.normal_with((2.0f64).ln(), 4.0),
            sigma: rng.range_f64(0.5, 0.9),
            heavy_prob: 0.015,
            heavy_mult: rng.range_f64(600.0, 1200.0),
        },
    }
}

fn sample_duration_ms(model: ExecModel, rng: &mut Rng) -> u32 {
    let mut d = rng.lognormal(model.mu_ln_ms, model.sigma);
    if rng.chance(model.heavy_prob) {
        d *= model.heavy_mult;
    }
    d.clamp(1.0, 600_000.0) as u32
}

/// Cold-start model: functions use standard images (sub-second to a few
/// seconds); applications pull custom containers whose initialization has
/// a Pareto tail reaching past 100 s (Fig. 6, Implication 2).
fn sample_cold_start_ms(kind: WorkloadKind, rng: &mut Rng) -> u32 {
    match kind {
        WorkloadKind::Function => {
            rng.lognormal((800.0f64).ln(), 0.4).clamp(100.0, 5_000.0) as u32
        }
        _ => {
            if rng.chance(0.25) {
                // Heavy custom image.
                rng.pareto(4_000.0, 0.85).min(400_000.0) as u32
            } else {
                rng.lognormal((1_500.0f64).ln(), 0.8).clamp(200.0, 20_000.0)
                    as u32
            }
        }
    }
}

/// Thins an arrival stream with alternating full-rate and reduced-rate
/// windows (exponentially distributed lengths), raising the IAT
/// coefficient of variation above 1 while keeping arrivals sorted.
fn overdisperse(arrivals: Vec<u64>, rng: &mut Rng) -> Vec<u64> {
    let mut out = Vec::with_capacity(arrivals.len());
    let mut window_end = 0u64;
    let mut quiet = false;
    let mut keep_prob = 1.0;
    for t in arrivals {
        while t >= window_end {
            quiet = !quiet;
            keep_prob = if quiet { rng.range_f64(0.05, 0.3) } else { 1.0 };
            let mean_len_ms = if quiet { 120_000.0 } else { 180_000.0 };
            window_end += (rng.exp(1.0 / mean_len_ms)).max(1_000.0) as u64;
        }
        if rng.chance(keep_prob) {
            out.push(t);
        }
    }
    out
}

/// Keep-alive horizon used when synthesizing *observed* platform delays
/// for the characterization trace (the platform's default policy).
const OBSERVED_KEEPALIVE_MS: u64 = 60_000;

/// Generates the fleet.
pub fn generate(cfg: &IbmFleetConfig) -> Trace {
    let span_ms = cfg.span_days * MS_PER_DAY;
    let mut master = Rng::seed_from_u64(cfg.seed);
    let mut trace = Trace::new(span_ms);
    for i in 0..cfg.n_apps {
        let mut rng = master.fork();
        let kind = match rng.weighted_index(&[0.75, 0.10, 0.15]) {
            0 => WorkloadKind::Application,
            1 => WorkloadKind::Function,
            _ => WorkloadKind::BatchJob,
        };
        let arch = if kind == WorkloadKind::BatchJob {
            // Batch jobs are timer- or event-triggered.
            if rng.chance(0.3) {
                Archetype::Timer
            } else {
                Archetype::BurstyOnOff
            }
        } else {
            pick_archetype(&mut rng)
        };
        let pattern = pattern_for(arch, cfg.rate_scale, &mut rng);
        let mut arrivals = pattern.generate(
            span_ms,
            cfg.max_invocations_per_app,
            &mut rng,
        );
        if arch == Archetype::HeavyDiurnal {
            // Even heavy production traffic is over-dispersed (CV > 1 for
            // 96 % of workloads); pure Poisson arrivals have CV = 1, so
            // thin the stream with alternating calm/quiet windows.
            arrivals = overdisperse(arrivals, &mut rng);
        }
        let exec = sample_exec_model(kind, &mut rng);
        let cold_start_ms = sample_cold_start_ms(kind, &mut rng);
        let mut config = sample_config(&mut rng);
        if kind == WorkloadKind::Function {
            config.concurrency = 1;
        }
        let mem_used_mb = rng
            .lognormal((150.0f64).ln(), 0.7)
            .clamp(16.0, config.mem_mb as f64) as u32;

        let mut invocations = Vec::with_capacity(arrivals.len());
        let mut busy_until = 0u64;
        let warm_pool = config.min_scale > 0;
        // Scale-out cold probability: even warm apps occasionally pay a
        // cold start when a burst outgrows current capacity. Per-app so
        // that a visible minority of workloads develops second-scale p99
        // delays (Fig. 6: ~20 % of workloads with p99 above 1 s).
        let scale_out_cold_prob = if warm_pool {
            0.0
        } else {
            (10.0f64).powf(rng.range_f64(-3.5, -1.0))
        };
        for &start_ms in &arrivals {
            let duration_ms = sample_duration_ms(exec, &mut rng);
            // Observed platform delay: warm requests see sub-ms routing
            // latency; a request after a long idle gap on a scale-to-zero
            // app pays the app's cold start, as does a request caught by
            // a scale-out event.
            let idle_gap = start_ms.saturating_sub(busy_until);
            let cold = (!warm_pool && idle_gap > OBSERVED_KEEPALIVE_MS)
                || rng.chance(scale_out_cold_prob);
            let delay_ms = if cold {
                cold_start_ms
            } else {
                rng.lognormal((0.3f64).ln(), 1.0).clamp(0.05, 50.0) as u32
            };
            let inv = Invocation {
                start_ms,
                duration_ms,
                delay_ms,
            };
            busy_until = busy_until.max(inv.end_ms());
            invocations.push(inv);
        }
        trace.apps.push(AppRecord {
            id: AppId(i as u32),
            kind,
            config,
            mem_used_mb,
            cold_start_ms,
            invocations,
        });
    }
    femux_obs::counter_add(
        "trace.synth.ibm.apps",
        trace.apps.len() as u64,
    );
    femux_obs::counter_add(
        "trace.synth.ibm.invocations",
        trace.total_invocations(),
    );
    trace
}

/// Computes the fleet's *expected* daily invocation counts without
/// materializing any invocations — this is how the 62-day Fig. 1 series
/// (1.9 B invocations in production) is regenerated cheaply. Rates are
/// reported unscaled (as if `rate_scale = 1`).
pub fn expected_fleet_daily_counts(cfg: &IbmFleetConfig) -> Vec<f64> {
    let span_ms = cfg.span_days * MS_PER_DAY;
    let mut master = Rng::seed_from_u64(cfg.seed);
    let days = cfg.span_days as usize;
    let mut totals = vec![0.0; days];
    // Re-derive the same per-app patterns but integrate analytically with
    // the volume-scaling knobs undone.
    let unscaled = IbmFleetConfig {
        rate_scale: 1.0,
        ..cfg.clone()
    };
    for _ in 0..cfg.n_apps {
        let mut rng = master.fork();
        let kind = match rng.weighted_index(&[0.75, 0.10, 0.15]) {
            0 => WorkloadKind::Application,
            1 => WorkloadKind::Function,
            _ => WorkloadKind::BatchJob,
        };
        let arch = if kind == WorkloadKind::BatchJob {
            Archetype::Timer
        } else {
            pick_archetype(&mut rng)
        };
        let pattern = pattern_for(arch, unscaled.rate_scale, &mut rng);
        for (d, c) in
            expected_daily_counts(&pattern, span_ms).iter().enumerate()
        {
            if d < days {
                totals[d] += c;
            }
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::desc::{
        coefficient_of_variation, fraction_where, mean, median,
    };

    fn small_fleet() -> Trace {
        generate(&IbmFleetConfig::small(7))
    }

    #[test]
    fn fleet_is_valid_and_deterministic() {
        let a = small_fleet();
        assert!(a.validate().is_ok());
        let b = generate(&IbmFleetConfig::small(7));
        assert_eq!(a, b);
        let c = generate(&IbmFleetConfig::small(8));
        assert_ne!(a, c);
    }

    #[test]
    fn workload_kind_mix() {
        let trace = generate(&IbmFleetConfig {
            n_apps: 600,
            ..IbmFleetConfig::small(1)
        });
        let apps = trace
            .apps
            .iter()
            .filter(|a| a.kind == WorkloadKind::Application)
            .count() as f64
            / 600.0;
        assert!((apps - 0.75).abs() < 0.07, "application fraction {apps}");
    }

    #[test]
    fn config_marginals_match_fig7() {
        let trace = generate(&IbmFleetConfig {
            n_apps: 2_000,
            span_days: 1,
            max_invocations_per_app: 10,
            rate_scale: 0.001,
            ..IbmFleetConfig::small(2)
        });
        let n = trace.apps.len() as f64;
        // Exclude functions from the concurrency stat (they are forced
        // to 1) but configs otherwise follow the global marginals.
        let default_cpu = trace
            .apps
            .iter()
            .filter(|a| a.config.cpu_milli == 1_000)
            .count() as f64
            / n;
        assert!((default_cpu - 0.508).abs() < 0.05, "cpu {default_cpu}");
        let min_scale_ge1 = trace
            .apps
            .iter()
            .filter(|a| a.config.min_scale >= 1)
            .count() as f64
            / n;
        assert!(
            (min_scale_ge1 - 0.588).abs() < 0.05,
            "min scale {min_scale_ge1}"
        );
        let below_mem = trace
            .apps
            .iter()
            .filter(|a| a.config.mem_mb < 4_096)
            .count() as f64
            / n;
        assert!((below_mem - 0.536).abs() < 0.05, "mem {below_mem}");
    }

    #[test]
    fn iat_marginals_are_in_paper_bands() {
        // IAT marginals must be measured at `rate_scale = 1`: scaling
        // rates down is a volume knob that deliberately stretches IATs.
        let trace = generate(&IbmFleetConfig {
            n_apps: 300,
            span_days: 1,
            seed: 3,
            max_invocations_per_app: 30_000,
            rate_scale: 1.0,
        });
        let mut median_iats = Vec::new();
        let mut all_subsecond = 0u64;
        let mut all_total = 0u64;
        let mut high_cv = 0usize;
        let mut with_iats = 0usize;
        for app in &trace.apps {
            let iats = app.iats_secs();
            if iats.len() < 5 {
                continue;
            }
            with_iats += 1;
            median_iats.push(median(&iats).expect("non-empty"));
            all_subsecond += iats.iter().filter(|x| **x < 1.0).count() as u64;
            all_total += iats.len() as u64;
            if coefficient_of_variation(&iats) > 1.0 {
                high_cv += 1;
            }
        }
        let sub_min_median =
            fraction_where(&median_iats, |x| x < 60.0);
        assert!(
            sub_min_median > 0.70,
            "sub-minute median IAT fraction {sub_min_median}"
        );
        let inv_sub_sec = all_subsecond as f64 / all_total as f64;
        assert!(
            inv_sub_sec > 0.80,
            "sub-second invocation IAT fraction {inv_sub_sec}"
        );
        let cv_frac = high_cv as f64 / with_iats as f64;
        assert!(cv_frac > 0.75, "CV>1 fraction {cv_frac}");
    }

    #[test]
    fn exec_time_marginals() {
        let trace = generate(&IbmFleetConfig {
            n_apps: 500,
            ..IbmFleetConfig::small(4)
        });
        let means: Vec<f64> = trace
            .apps
            .iter()
            .filter(|a| {
                a.kind != WorkloadKind::BatchJob
                    && !a.invocations.is_empty()
            })
            .map(|a| mean(&a.durations_secs()))
            .collect();
        let sub_second = fraction_where(&means, |x| x < 1.0);
        assert!(
            (sub_second - 0.82).abs() < 0.1,
            "sub-second mean exec fraction {sub_second}"
        );
    }

    #[test]
    fn delays_have_long_tails() {
        let trace = generate(&IbmFleetConfig {
            n_apps: 300,
            span_days: 2,
            seed: 5,
            max_invocations_per_app: 20_000,
            rate_scale: 0.2,
        });
        let mut p99s = Vec::new();
        let mut all_delays = Vec::new();
        for app in &trace.apps {
            let delays = app.delays_secs();
            if delays.len() < 10 {
                continue;
            }
            p99s.push(
                femux_stats::desc::quantile(&delays, 0.99)
                    .expect("non-empty"),
            );
            all_delays.extend(delays);
        }
        // Most invocations see sub-ms delays...
        let sub_10ms = fraction_where(&all_delays, |x| x < 0.01);
        assert!(sub_10ms > 0.5, "sub-10ms delay fraction {sub_10ms}");
        // ...but a visible share of workloads has second-scale p99.
        let tail = fraction_where(&p99s, |x| x > 1.0);
        assert!(tail > 0.05 && tail < 0.6, "p99>1s fraction {tail}");
    }

    #[test]
    fn expected_daily_counts_show_weekly_structure() {
        let cfg = IbmFleetConfig {
            n_apps: 200,
            span_days: 14,
            ..IbmFleetConfig::small(6)
        };
        let daily = expected_fleet_daily_counts(&cfg);
        assert_eq!(daily.len(), 14);
        // Weekend days (5, 6, 12, 13) carry less traffic than weekdays.
        let weekday: f64 = (daily[0] + daily[1] + daily[8]) / 3.0;
        let weekend: f64 = (daily[5] + daily[6] + daily[12]) / 3.0;
        assert!(weekend < weekday, "weekend {weekend} weekday {weekday}");
    }

    #[test]
    fn min_scale_zero_apps_record_cold_delays() {
        let trace = small_fleet();
        let has_cold = trace.apps.iter().any(|a| {
            a.config.min_scale == 0
                && a.invocations.iter().any(|i| i.delay_ms > 1_000)
        });
        assert!(has_cold, "no cold-start delays synthesized");
    }
}

//! Traffic representations.
//!
//! Lifetime managers in the literature consume traces in different shapes
//! (§4.3.1): per-minute invocation counts (IceBreaker, Aquatope), idle
//! times (Shahrad '20 histograms), or Knative's *average concurrency* —
//! the representation FeMux uses because the prototype sits in Knative's
//! metric path. This module converts the raw invocation stream into each
//! of them.

use crate::types::{Invocation, MS_PER_MIN};

/// Computes invocation counts per fixed-size step.
///
/// `steps` is derived from `span_ms` rounded up; invocations past the span
/// are ignored.
pub fn counts_per_step(
    invocations: &[Invocation],
    step_ms: u64,
    span_ms: u64,
) -> Vec<f64> {
    assert!(step_ms > 0, "step must be positive");
    let steps = span_ms.div_ceil(step_ms) as usize;
    let mut counts = vec![0.0; steps];
    for inv in invocations {
        let idx = (inv.start_ms / step_ms) as usize;
        if idx < steps {
            counts[idx] += 1.0;
        }
    }
    counts
}

/// Computes invocation counts per minute — the Azure '19 representation.
pub fn counts_per_minute(
    invocations: &[Invocation],
    span_ms: u64,
) -> Vec<f64> {
    counts_per_step(invocations, MS_PER_MIN, span_ms)
}

/// Computes *average concurrency* per step, the Knative representation:
/// for each step, the sum over requests of their in-flight overlap with
/// the step, divided by the step length.
///
/// A request is considered in flight from its arrival to the end of its
/// execution (service time). This matches the queue-proxy's concurrency
/// metric, which counts queued plus executing requests.
pub fn average_concurrency(
    invocations: &[Invocation],
    step_ms: u64,
    span_ms: u64,
) -> Vec<f64> {
    assert!(step_ms > 0, "step must be positive");
    let steps = span_ms.div_ceil(step_ms) as usize;
    let mut acc = vec![0.0; steps];
    for inv in invocations {
        let start = inv.start_ms;
        // Zero-duration requests still contribute an impulse of one
        // request; give them a 1 ms floor so they register.
        let end = inv.end_ms().max(start + 1);
        let first = (start / step_ms) as usize;
        let last = ((end - 1) / step_ms) as usize;
        #[expect(clippy::needless_range_loop)]
        for step in first..=last.min(steps.saturating_sub(1)) {
            let step_start = step as u64 * step_ms;
            let step_end = step_start + step_ms;
            let overlap =
                end.min(step_end).saturating_sub(start.max(step_start));
            acc[step] += overlap as f64 / step_ms as f64;
        }
    }
    acc
}

/// Computes per-minute average concurrency over the span.
pub fn concurrency_per_minute(
    invocations: &[Invocation],
    span_ms: u64,
) -> Vec<f64> {
    average_concurrency(invocations, MS_PER_MIN, span_ms)
}

/// Computes idle gaps in seconds: for each consecutive invocation pair, the
/// time from the completion of the earlier request to the arrival of the
/// next, clamped at zero (overlapping requests have no idle gap).
pub fn idle_times_secs(invocations: &[Invocation]) -> Vec<f64> {
    let mut busy_until = 0u64;
    let mut gaps = Vec::new();
    for (i, inv) in invocations.iter().enumerate() {
        if i > 0 {
            let gap = inv.start_ms.saturating_sub(busy_until);
            gaps.push(gap as f64 / 1_000.0);
        }
        busy_until = busy_until.max(inv.end_ms());
    }
    gaps
}

/// Expands per-minute counts into millisecond invocations by distributing
/// each minute's invocations uniformly within the minute — the convention
/// the paper (and FaasCache/IceBreaker evaluations) use when replaying the
/// minute-granularity Azure '19 trace.
///
/// `duration_ms` is applied to every generated invocation.
pub fn counts_to_invocations(
    counts: &[f64],
    duration_ms: u32,
) -> Vec<Invocation> {
    let mut out = Vec::new();
    for (minute, &c) in counts.iter().enumerate() {
        let n = c.round() as u64;
        if n == 0 {
            continue;
        }
        let base = minute as u64 * MS_PER_MIN;
        for k in 0..n {
            // Uniform spacing with a half-slot offset keeps arrivals
            // strictly inside the minute and deterministic.
            let offset = (2 * k + 1) * MS_PER_MIN / (2 * n);
            out.push(Invocation {
                start_ms: base + offset,
                duration_ms,
                delay_ms: 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(start_ms: u64, duration_ms: u32) -> Invocation {
        Invocation {
            start_ms,
            duration_ms,
            delay_ms: 0,
        }
    }

    #[test]
    fn counts_bucket_correctly() {
        let invs = vec![inv(0, 10), inv(59_999, 10), inv(60_000, 10)];
        let counts = counts_per_minute(&invs, 120_000);
        assert_eq!(counts, vec![2.0, 1.0]);
    }

    #[test]
    fn counts_ignore_out_of_span() {
        let invs = vec![inv(0, 10), inv(500_000, 10)];
        let counts = counts_per_minute(&invs, 60_000);
        assert_eq!(counts, vec![1.0]);
    }

    #[test]
    fn concurrency_single_request_fraction() {
        // A 30 s request in a 60 s step contributes 0.5.
        let invs = vec![inv(0, 30_000)];
        let conc = concurrency_per_minute(&invs, 60_000);
        assert!((conc[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn concurrency_spanning_steps() {
        // Runs from 30 s to 90 s: half of each of two minutes.
        let invs = vec![inv(30_000, 60_000)];
        let conc = concurrency_per_minute(&invs, 120_000);
        assert!((conc[0] - 0.5).abs() < 1e-9);
        assert!((conc[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn concurrency_overlapping_requests_sum() {
        let invs = vec![inv(0, 60_000), inv(0, 60_000)];
        let conc = concurrency_per_minute(&invs, 60_000);
        assert!((conc[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn concurrency_counts_delay_as_in_flight() {
        // 30 s of delay + 30 s execution occupies the full minute.
        let invs = vec![Invocation {
            start_ms: 0,
            duration_ms: 30_000,
            delay_ms: 30_000,
        }];
        let conc = concurrency_per_minute(&invs, 60_000);
        assert!((conc[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_registers() {
        let invs = vec![inv(10, 0)];
        let conc = concurrency_per_minute(&invs, 60_000);
        assert!(conc[0] > 0.0);
    }

    #[test]
    fn idle_gaps() {
        let invs = vec![inv(0, 1_000), inv(5_000, 1_000), inv(5_500, 1_000)];
        let gaps = idle_times_secs(&invs);
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0] - 4.0).abs() < 1e-9);
        // Third arrives while second still running: zero gap.
        assert_eq!(gaps[1], 0.0);
    }

    #[test]
    fn counts_round_trip() {
        let counts = vec![3.0, 0.0, 1.0];
        let invs = counts_to_invocations(&counts, 250);
        assert_eq!(invs.len(), 4);
        let back = counts_per_minute(&invs, 180_000);
        assert_eq!(back, counts);
        // All arrivals stay within their minute.
        assert!(invs[0].start_ms < 60_000);
        assert!(invs[3].start_ms >= 120_000 && invs[3].start_ms < 180_000);
        // Uniform spread: three per minute at 10 s, 30 s, 50 s offsets.
        assert_eq!(invs[0].start_ms, 10_000);
        assert_eq!(invs[1].start_ms, 30_000);
        assert_eq!(invs[2].start_ms, 50_000);
    }

    #[test]
    fn empty_inputs() {
        assert!(counts_per_minute(&[], 0).is_empty());
        assert!(average_concurrency(&[], 1_000, 0).is_empty());
        assert!(idle_times_secs(&[]).is_empty());
        assert!(counts_to_invocations(&[], 10).is_empty());
    }
}

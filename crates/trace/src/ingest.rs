//! Serving-boundary trace ingest.
//!
//! The offline loader ([`crate::io::read_trace`]) is deliberately
//! lenient: external tooling interleaves apps and emits timestamps in
//! any order, so it sorts per app on load. That leniency is wrong at the
//! *serving* boundary. An online harness consumes history as it arrives;
//! sorting would rewrite the past (an invocation "arriving" before ones
//! already served), silently changing per-minute concurrency samples and
//! therefore every downstream feature, classification, and scaling
//! decision — while the operator believes they replayed the trace as
//! recorded.
//!
//! [`read_trace_strict`] and [`sanitize_trace`] instead apply an
//! explicit [`MonotonePolicy`]: **reject** the trace with an error
//! naming the app and offending record, or **clamp** late timestamps
//! forward to the running maximum (preserving arrival order) and report
//! how many were touched so the caller can surface the count.

use std::io::BufRead;

use crate::io::{parse_trace, TraceIoError};
use crate::types::{AppId, Invocation, Trace};

/// What to do with a timestamp that goes backwards at the serving
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonotonePolicy {
    /// Fail ingest with [`IngestError::NonMonotone`].
    Reject,
    /// Clamp the offending `start_ms` forward to the running maximum,
    /// preserving arrival order, and count the clamp.
    Clamp,
}

/// Errors arising at the serving ingest boundary.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying CSV was unreadable.
    Io(TraceIoError),
    /// An invocation's timestamp went backwards under
    /// [`MonotonePolicy::Reject`].
    NonMonotone {
        /// The offending application.
        app: AppId,
        /// Index of the offending invocation within the app's list.
        index: usize,
        /// The running maximum `start_ms` seen before it.
        prev_ms: u64,
        /// The offending (earlier) `start_ms`.
        start_ms: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "{e}"),
            IngestError::NonMonotone {
                app,
                index,
                prev_ms,
                start_ms,
            } => write!(
                f,
                "non-monotone timestamp for app {}: invocation {index} \
                 starts at {start_ms} ms after one at {prev_ms} ms",
                app.0
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<TraceIoError> for IngestError {
    fn from(e: TraceIoError) -> Self {
        IngestError::Io(e)
    }
}

/// Enforces monotone `start_ms` over one app's invocations in arrival
/// order. Returns the number of clamped records (0 under `Reject`, which
/// errors instead of touching anything).
pub fn enforce_monotone(
    app: AppId,
    invocations: &mut [Invocation],
    policy: MonotonePolicy,
) -> Result<usize, IngestError> {
    let mut high = 0u64;
    let mut clamped = 0usize;
    for (index, inv) in invocations.iter_mut().enumerate() {
        if inv.start_ms < high {
            match policy {
                MonotonePolicy::Reject => {
                    return Err(IngestError::NonMonotone {
                        app,
                        index,
                        prev_ms: high,
                        start_ms: inv.start_ms,
                    });
                }
                MonotonePolicy::Clamp => {
                    inv.start_ms = high;
                    clamped += 1;
                }
            }
        } else {
            high = inv.start_ms;
        }
    }
    Ok(clamped)
}

/// Applies [`enforce_monotone`] to every app of a trace. Returns the
/// total number of clamped invocations.
pub fn sanitize_trace(
    trace: &mut Trace,
    policy: MonotonePolicy,
) -> Result<usize, IngestError> {
    let mut clamped = 0;
    for app in &mut trace.apps {
        clamped += enforce_monotone(app.id, &mut app.invocations, policy)?;
    }
    if clamped > 0 {
        femux_obs::counter_add(
            "trace.ingest.clamped_timestamps",
            clamped as u64,
        );
    }
    Ok(clamped)
}

/// Reads a trace for serving: same CSV format as
/// [`crate::io::read_trace`], but non-monotone timestamps are handled by
/// `policy` instead of being silently re-sorted. Returns the trace and
/// the number of clamped invocations.
pub fn read_trace_strict<R: BufRead>(
    input: R,
    policy: MonotonePolicy,
) -> Result<(Trace, usize), IngestError> {
    let mut trace = parse_trace(input)?;
    let clamped = sanitize_trace(&mut trace, policy)?;
    Ok((trace, clamped))
}

#[cfg(test)]
mod tests {
    use super::*;

    const OUT_OF_ORDER: &str = "femux-trace,v1,10000\n\
                                A,1,app,1000,4096,100,0,150,808\n\
                                I,1,300,10,0\n\
                                I,1,700,10,0\n\
                                I,1,500,10,0\n\
                                I,1,900,10,0\n";

    #[test]
    fn reject_names_app_and_record() {
        // Regression: the lenient loader accepted this trace and
        // silently moved the 500 ms invocation before the 700 ms one —
        // the serving boundary must refuse instead.
        let err = read_trace_strict(
            OUT_OF_ORDER.as_bytes(),
            MonotonePolicy::Reject,
        )
        .unwrap_err();
        match &err {
            IngestError::NonMonotone {
                app,
                index,
                prev_ms,
                start_ms,
            } => {
                assert_eq!(*app, AppId(1));
                assert_eq!(*index, 2);
                assert_eq!(*prev_ms, 700);
                assert_eq!(*start_ms, 500);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("app 1") && msg.contains("500"), "{msg}");
    }

    #[test]
    fn clamp_preserves_arrival_order() {
        let (trace, clamped) = read_trace_strict(
            OUT_OF_ORDER.as_bytes(),
            MonotonePolicy::Clamp,
        )
        .expect("clamped load");
        assert_eq!(clamped, 1);
        let starts: Vec<u64> = trace.apps[0]
            .invocations
            .iter()
            .map(|i| i.start_ms)
            .collect();
        // The late record is pulled forward to the running max; nothing
        // is reordered.
        assert_eq!(starts, vec![300, 700, 700, 900]);
        assert!(trace.apps[0].is_sorted());
    }

    #[test]
    fn sorted_trace_passes_both_policies_untouched() {
        let text = "femux-trace,v1,10000\n\
                    A,1,app,1000,4096,100,0,150,808\n\
                    I,1,100,10,0\n\
                    I,1,100,10,0\n\
                    I,1,250,10,0\n";
        for policy in [MonotonePolicy::Reject, MonotonePolicy::Clamp] {
            let (trace, clamped) =
                read_trace_strict(text.as_bytes(), policy).unwrap();
            assert_eq!(clamped, 0, "{policy:?}");
            assert_eq!(trace.apps[0].invocations.len(), 3);
        }
    }

    #[test]
    fn lenient_loader_differs_observably_from_strict() {
        // Document exactly what "silent reordering" changes: the lenient
        // loader produces a different invocation sequence than clamped
        // strict ingest on the same bytes.
        let lenient =
            crate::io::read_trace(OUT_OF_ORDER.as_bytes()).unwrap();
        let (strict, _) = read_trace_strict(
            OUT_OF_ORDER.as_bytes(),
            MonotonePolicy::Clamp,
        )
        .unwrap();
        assert_ne!(
            lenient.apps[0].invocations,
            strict.apps[0].invocations
        );
    }

    #[test]
    fn enforce_monotone_on_empty_and_single() {
        for policy in [MonotonePolicy::Reject, MonotonePolicy::Clamp] {
            assert_eq!(
                enforce_monotone(AppId(7), &mut [], policy).unwrap(),
                0
            );
            let mut one = [Invocation {
                start_ms: 5,
                duration_ms: 1,
                delay_ms: 0,
            }];
            assert_eq!(
                enforce_monotone(AppId(7), &mut one, policy).unwrap(),
                0
            );
        }
    }
}

//! Train/test splitting and representative sampling.
//!
//! The paper's evaluation (§5.1) cleans the Azure trace, splits
//! applications 70-30 into train and test (training further halved into
//! train/validation), and samples sub-traces stratified by traffic volume
//! (under 1 M, 1 M - 100 M, over 100 M invocations). The Knative workload
//! (§5.2) samples 100 applications whose invocation-volume distribution
//! follows the full dataset's.

use femux_stats::rng::Rng;

/// Traffic-volume class of an application, after the paper's thresholds.
///
/// The absolute thresholds (1 M / 100 M over 12 days) correspond to the
/// full-scale production trace; scaled-down synthetic fleets pass their
/// own thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VolumeClass {
    /// Fewer than the low threshold of invocations.
    Low,
    /// Between the thresholds.
    Mid,
    /// Above the high threshold.
    High,
}

/// Volume thresholds defining [`VolumeClass`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeThresholds {
    /// Boundary between Low and Mid.
    pub low: u64,
    /// Boundary between Mid and High.
    pub high: u64,
}

impl VolumeThresholds {
    /// The paper's production-scale thresholds (1 M and 100 M).
    pub fn paper() -> Self {
        VolumeThresholds {
            low: 1_000_000,
            high: 100_000_000,
        }
    }

    /// Thresholds scaled by a volume factor, for reduced fleets.
    pub fn scaled(factor: f64) -> Self {
        VolumeThresholds {
            low: (1_000_000.0 * factor).max(1.0) as u64,
            high: (100_000_000.0 * factor).max(2.0) as u64,
        }
    }

    /// Classifies a total invocation count.
    pub fn classify(&self, invocations: u64) -> VolumeClass {
        if invocations >= self.high {
            VolumeClass::High
        } else if invocations >= self.low {
            VolumeClass::Mid
        } else {
            VolumeClass::Low
        }
    }
}

/// A 70-30 train/test split (with the train half further split into
/// train/validation, as in §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of training items.
    pub train: Vec<usize>,
    /// Indices of validation items.
    pub validation: Vec<usize>,
    /// Indices of test items.
    pub test: Vec<usize>,
}

/// Splits `n` items 70-30 into (train+validation)/test, then halves the
/// 70 % into train and validation. Shuffling is seeded for
/// reproducibility.
pub fn train_test_split(n: usize, seed: u64) -> Split {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(&mut idx);
    let test_start = (n as f64 * 0.7).round() as usize;
    let train_val = &idx[..test_start];
    let half = train_val.len() / 2;
    Split {
        train: train_val[..half].to_vec(),
        validation: train_val[half..].to_vec(),
        test: idx[test_start..].to_vec(),
    }
}

/// Samples `k` indices so that the sampled volume distribution follows
/// the full population's (the "representativity" requirement of §5.2):
/// items are sorted by volume, divided into `k` equal-probability strata,
/// and one item is drawn per stratum.
///
/// # Panics
///
/// Panics if `k == 0` or `k > volumes.len()`.
pub fn representative_sample(
    volumes: &[u64],
    k: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(k > 0 && k <= volumes.len(), "bad sample size");
    let mut order: Vec<usize> = (0..volumes.len()).collect();
    order.sort_by_key(|&i| volumes[i]);
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(k);
    for s in 0..k {
        let lo = s * order.len() / k;
        let hi = ((s + 1) * order.len() / k).max(lo + 1);
        out.push(order[lo + rng.index(hi - lo)]);
    }
    out
}

/// Groups item indices by volume class.
pub fn group_by_class(
    volumes: &[u64],
    thresholds: VolumeThresholds,
) -> [Vec<usize>; 3] {
    let mut groups: [Vec<usize>; 3] = Default::default();
    for (i, &v) in volumes.iter().enumerate() {
        match thresholds.classify(v) {
            VolumeClass::Low => groups[0].push(i),
            VolumeClass::Mid => groups[1].push(i),
            VolumeClass::High => groups[2].push(i),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_everything() {
        let split = train_test_split(100, 1);
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.validation)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert_eq!(split.test.len(), 30);
        assert_eq!(split.train.len(), 35);
        assert_eq!(split.validation.len(), 35);
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(train_test_split(50, 7), train_test_split(50, 7));
        assert_ne!(
            train_test_split(50, 7).test,
            train_test_split(50, 8).test
        );
    }

    #[test]
    fn classify_thresholds() {
        let t = VolumeThresholds::paper();
        assert_eq!(t.classify(999_999), VolumeClass::Low);
        assert_eq!(t.classify(1_000_000), VolumeClass::Mid);
        assert_eq!(t.classify(100_000_000), VolumeClass::High);
    }

    #[test]
    fn scaled_thresholds() {
        let t = VolumeThresholds::scaled(0.001);
        assert_eq!(t.low, 1_000);
        assert_eq!(t.high, 100_000);
    }

    #[test]
    fn representative_sample_covers_volume_range() {
        // Volumes spanning five decades; a 10-sample must include both
        // tails.
        let volumes: Vec<u64> =
            (0..1_000).map(|i| 10u64.pow(1 + (i / 200) as u32)).collect();
        let sample = representative_sample(&volumes, 10, 3);
        assert_eq!(sample.len(), 10);
        let vols: Vec<u64> = sample.iter().map(|&i| volumes[i]).collect();
        assert!(vols.contains(&10));
        assert!(vols.contains(&100_000));
    }

    #[test]
    fn group_by_class_partitions() {
        let volumes = vec![10, 2_000_000, 500, 200_000_000];
        let groups = group_by_class(&volumes, VolumeThresholds::paper());
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[1], vec![1]);
        assert_eq!(groups[2], vec![3]);
    }
}

//! Trace manipulation utilities.
//!
//! Experiments routinely need to carve traces: select an app subset,
//! clip a time window, merge fleets, or rescale volumes. These
//! operations preserve the structural invariants `Trace::validate`
//! checks.

use crate::types::{AppId, Trace};

/// Returns a new trace containing only the apps at `indices` (in the
/// given order).
///
/// # Panics
///
/// Panics if an index is out of range.
pub fn select_apps(trace: &Trace, indices: &[usize]) -> Trace {
    let mut out = Trace::new(trace.span_ms);
    for &i in indices {
        out.apps.push(trace.apps[i].clone());
    }
    out
}

/// Returns a new trace clipped to `[from_ms, to_ms)`, with timestamps
/// rebased to start at zero. Apps left with no invocations are kept
/// (their configuration still matters for min-scale accounting).
///
/// # Panics
///
/// Panics if `from_ms >= to_ms`.
pub fn clip_window(trace: &Trace, from_ms: u64, to_ms: u64) -> Trace {
    assert!(from_ms < to_ms, "empty clip window");
    let mut out = Trace::new(to_ms.min(trace.span_ms).saturating_sub(from_ms));
    for app in &trace.apps {
        let mut clipped = app.clone();
        clipped.invocations = app
            .invocations
            .iter()
            .filter(|i| i.start_ms >= from_ms && i.start_ms < to_ms)
            .map(|i| {
                let mut inv = *i;
                inv.start_ms -= from_ms;
                inv
            })
            .collect();
        out.apps.push(clipped);
    }
    out
}

/// Merges two traces into one fleet, renumbering the second trace's app
/// ids to avoid collisions. The span is the maximum of the two.
pub fn merge(a: &Trace, b: &Trace) -> Trace {
    let mut out = Trace::new(a.span_ms.max(b.span_ms));
    out.apps.extend(a.apps.iter().cloned());
    let offset = a
        .apps
        .iter()
        .map(|app| app.id.0 + 1)
        .max()
        .unwrap_or(0);
    for app in &b.apps {
        let mut renumbered = app.clone();
        renumbered.id = AppId(app.id.0 + offset);
        out.apps.push(renumbered);
    }
    out
}

/// Deterministically thins every app's invocations by keeping one in
/// `keep_one_in` (volume downscaling that preserves timing structure
/// better than rate scaling for replay purposes).
///
/// # Panics
///
/// Panics if `keep_one_in == 0`.
pub fn thin(trace: &Trace, keep_one_in: usize) -> Trace {
    assert!(keep_one_in > 0, "keep_one_in must be positive");
    let mut out = trace.clone();
    for app in &mut out.apps {
        app.invocations = app
            .invocations
            .iter()
            .enumerate()
            .filter(|(k, _)| k % keep_one_in == 0)
            .map(|(_, i)| *i)
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ibm::{generate, IbmFleetConfig};

    fn fleet() -> Trace {
        generate(&IbmFleetConfig::small(55))
    }

    #[test]
    fn select_preserves_order_and_validates() {
        let trace = fleet();
        let sub = select_apps(&trace, &[5, 1, 9]);
        assert_eq!(sub.apps.len(), 3);
        assert_eq!(sub.apps[0].id, trace.apps[5].id);
        assert_eq!(sub.apps[1].id, trace.apps[1].id);
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn clip_rebases_and_bounds() {
        let trace = fleet();
        let day_ms = 86_400_000;
        let clipped = clip_window(&trace, day_ms, 2 * day_ms);
        assert_eq!(clipped.span_ms, day_ms);
        assert!(clipped.validate().is_ok());
        for app in &clipped.apps {
            for inv in &app.invocations {
                assert!(inv.start_ms < day_ms);
            }
        }
        // Total invocations in the window match the original count.
        let original_in_window: u64 = trace
            .apps
            .iter()
            .flat_map(|a| &a.invocations)
            .filter(|i| i.start_ms >= day_ms && i.start_ms < 2 * day_ms)
            .count() as u64;
        assert_eq!(clipped.total_invocations(), original_in_window);
    }

    #[test]
    fn merge_renumbers_ids_uniquely() {
        let a = fleet();
        let b = generate(&IbmFleetConfig::small(56));
        let merged = merge(&a, &b);
        assert_eq!(merged.apps.len(), a.apps.len() + b.apps.len());
        let mut ids: Vec<u32> = merged.apps.iter().map(|x| x.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), merged.apps.len(), "ids must be unique");
        assert!(merged.validate().is_ok());
        assert_eq!(
            merged.total_invocations(),
            a.total_invocations() + b.total_invocations()
        );
    }

    #[test]
    fn thin_keeps_every_kth() {
        let trace = fleet();
        let thinned = thin(&trace, 3);
        assert!(thinned.validate().is_ok());
        for (orig, new) in trace.apps.iter().zip(&thinned.apps) {
            assert_eq!(
                new.invocations.len(),
                orig.invocations.len().div_ceil(3)
            );
            if let (Some(a), Some(b)) =
                (orig.invocations.first(), new.invocations.first())
            {
                assert_eq!(a, b, "first invocation survives thinning");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty clip window")]
    fn empty_clip_panics() {
        clip_window(&fleet(), 10, 10);
    }
}

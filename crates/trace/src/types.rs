//! Core trace data model.
//!
//! Mirrors the schema of the paper's IBM Cloud Code Engine dataset:
//! millisecond-timestamped invocations with per-request execution durations
//! and platform delays, plus per-application configuration metadata (CPU,
//! memory, container concurrency, minimum pod scale) — the fields Table 1
//! credits as unique to that trace.

/// Milliseconds in one second.
pub const MS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MS_PER_MIN: u64 = 60_000;
/// Milliseconds in one hour.
pub const MS_PER_HOUR: u64 = 3_600_000;
/// Milliseconds in one day.
pub const MS_PER_DAY: u64 = 86_400_000;

/// Identifier of an application (or function) within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app-{:05}", self.0)
    }
}

/// The kind of serverless workload, per IBM's platform mix (§2.1: ~75 %
/// applications, ~15 % batch jobs, ~10 % functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A custom-container application (may serve many concurrent requests).
    Application,
    /// A code-snippet function (concurrency 1, standard images).
    Function,
    /// A batch job (event/timer triggered, no inbound HTTP).
    BatchJob,
}

/// Per-application resource and scaling configuration (Fig. 7 fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppConfig {
    /// Requested CPU in millicores (default 1000 = 1 vCPU).
    pub cpu_milli: u32,
    /// Requested memory in MB (default 4096 = 4 GB).
    pub mem_mb: u32,
    /// Container concurrency limit (default 100; functions use 1).
    pub concurrency: u32,
    /// Minimum pod scale (default 0 = scale to zero).
    pub min_scale: u32,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            cpu_milli: 1_000,
            mem_mb: 4_096,
            concurrency: 100,
            min_scale: 0,
        }
    }
}

impl AppConfig {
    /// Returns the configured memory in GB.
    pub fn mem_gb(&self) -> f64 {
        self.mem_mb as f64 / 1024.0
    }
}

/// A single invocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Arrival time in milliseconds since trace start.
    pub start_ms: u64,
    /// Execution duration in milliseconds.
    pub duration_ms: u32,
    /// Platform delay in milliseconds (service time minus execution time:
    /// cold start + queuing + inter-component latency). Zero when unknown.
    pub delay_ms: u32,
}

impl Invocation {
    /// Returns the completion time (`start + delay + duration`).
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.delay_ms as u64 + self.duration_ms as u64
    }

    /// Returns the total service time in milliseconds (delay + execution).
    pub fn service_ms(&self) -> u64 {
        self.delay_ms as u64 + self.duration_ms as u64
    }
}

/// All data for one application: identity, configuration, and its
/// time-sorted invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRecord {
    /// Application identity.
    pub id: AppId,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// User configuration.
    pub config: AppConfig,
    /// Typical memory actually consumed per pod in MB (for wasted-memory
    /// accounting; the paper's default analysis uses 150 MB medians from
    /// Azure '19).
    pub mem_used_mb: u32,
    /// Cold-start duration in milliseconds for this application's image
    /// (custom images can exceed 10 s; the paper's default analysis fixes
    /// this at 808 ms for comparability).
    pub cold_start_ms: u32,
    /// Time-sorted invocations.
    pub invocations: Vec<Invocation>,
}

impl AppRecord {
    /// Creates an empty record with default configuration.
    pub fn new(id: AppId, kind: WorkloadKind) -> Self {
        AppRecord {
            id,
            kind,
            config: AppConfig::default(),
            mem_used_mb: 150,
            cold_start_ms: 808,
            invocations: Vec::new(),
        }
    }

    /// Returns invocation inter-arrival times in seconds.
    pub fn iats_secs(&self) -> Vec<f64> {
        self.invocations
            .windows(2)
            .map(|w| (w[1].start_ms - w[0].start_ms) as f64 / 1_000.0)
            .collect()
    }

    /// Returns execution durations in seconds.
    pub fn durations_secs(&self) -> Vec<f64> {
        self.invocations
            .iter()
            .map(|i| i.duration_ms as f64 / 1_000.0)
            .collect()
    }

    /// Returns platform delays in seconds.
    pub fn delays_secs(&self) -> Vec<f64> {
        self.invocations
            .iter()
            .map(|i| i.delay_ms as f64 / 1_000.0)
            .collect()
    }

    /// Returns `true` if invocations are sorted by arrival time.
    pub fn is_sorted(&self) -> bool {
        self.invocations.windows(2).all(|w| w[0].start_ms <= w[1].start_ms)
    }

    /// Sorts invocations by arrival time (stable).
    pub fn sort(&mut self) {
        self.invocations.sort_by_key(|i| i.start_ms);
    }
}

/// A complete trace: a fleet of applications over a common time span.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Duration of the trace in milliseconds.
    pub span_ms: u64,
    /// Per-application records.
    pub apps: Vec<AppRecord>,
}

impl Trace {
    /// Creates an empty trace of the given span.
    pub fn new(span_ms: u64) -> Self {
        Trace {
            span_ms,
            apps: Vec::new(),
        }
    }

    /// Returns the total number of invocations across all applications.
    pub fn total_invocations(&self) -> u64 {
        self.apps.iter().map(|a| a.invocations.len() as u64).sum()
    }

    /// Returns the trace span in whole days (rounded up).
    pub fn span_days(&self) -> u64 {
        self.span_ms.div_ceil(MS_PER_DAY)
    }

    /// Looks up an application by id.
    pub fn app(&self, id: AppId) -> Option<&AppRecord> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// Returns invocation counts per day across the whole fleet — the
    /// series behind Fig. 1.
    pub fn daily_invocations(&self) -> Vec<u64> {
        let days = self.span_days() as usize;
        let mut counts = vec![0u64; days.max(1)];
        for app in &self.apps {
            for inv in &app.invocations {
                let d = (inv.start_ms / MS_PER_DAY) as usize;
                if d < counts.len() {
                    counts[d] += 1;
                }
            }
        }
        counts
    }

    /// Validates structural invariants: sorted invocations, in-span starts,
    /// non-zero span. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.span_ms == 0 {
            return Err("trace span is zero".into());
        }
        for app in &self.apps {
            if !app.is_sorted() {
                return Err(format!("{} invocations not sorted", app.id));
            }
            if let Some(inv) =
                app.invocations.iter().find(|i| i.start_ms >= self.span_ms)
            {
                return Err(format!(
                    "{} invocation at {} ms exceeds span {} ms",
                    app.id, inv.start_ms, self.span_ms
                ));
            }
            if app.config.concurrency == 0 {
                return Err(format!("{} has zero concurrency", app.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_app() -> AppRecord {
        let mut app = AppRecord::new(AppId(1), WorkloadKind::Application);
        app.invocations = vec![
            Invocation {
                start_ms: 0,
                duration_ms: 100,
                delay_ms: 5,
            },
            Invocation {
                start_ms: 500,
                duration_ms: 200,
                delay_ms: 0,
            },
            Invocation {
                start_ms: 2_500,
                duration_ms: 50,
                delay_ms: 900,
            },
        ];
        app
    }

    #[test]
    fn invocation_timing() {
        let inv = Invocation {
            start_ms: 1_000,
            duration_ms: 300,
            delay_ms: 20,
        };
        assert_eq!(inv.end_ms(), 1_320);
        assert_eq!(inv.service_ms(), 320);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = AppConfig::default();
        assert_eq!(cfg.cpu_milli, 1_000);
        assert_eq!(cfg.mem_mb, 4_096);
        assert_eq!(cfg.concurrency, 100);
        assert_eq!(cfg.min_scale, 0);
        assert!((cfg.mem_gb() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iats_and_durations() {
        let app = sample_app();
        let iats = app.iats_secs();
        assert_eq!(iats, vec![0.5, 2.0]);
        assert_eq!(app.durations_secs(), vec![0.1, 0.2, 0.05]);
        assert_eq!(app.delays_secs(), vec![0.005, 0.0, 0.9]);
    }

    #[test]
    fn sortedness() {
        let mut app = sample_app();
        assert!(app.is_sorted());
        app.invocations.swap(0, 2);
        assert!(!app.is_sorted());
        app.sort();
        assert!(app.is_sorted());
    }

    #[test]
    fn trace_accounting() {
        let mut trace = Trace::new(3 * MS_PER_DAY);
        trace.apps.push(sample_app());
        let mut b = AppRecord::new(AppId(2), WorkloadKind::Function);
        b.invocations.push(Invocation {
            start_ms: 2 * MS_PER_DAY + 5,
            duration_ms: 10,
            delay_ms: 0,
        });
        trace.apps.push(b);
        assert_eq!(trace.total_invocations(), 4);
        assert_eq!(trace.span_days(), 3);
        assert_eq!(trace.daily_invocations(), vec![3, 0, 1]);
        assert!(trace.validate().is_ok());
        assert!(trace.app(AppId(2)).is_some());
        assert!(trace.app(AppId(99)).is_none());
    }

    #[test]
    fn validate_rejects_out_of_span() {
        let mut trace = Trace::new(1_000);
        let mut app = AppRecord::new(AppId(1), WorkloadKind::Application);
        app.invocations.push(Invocation {
            start_ms: 5_000,
            duration_ms: 1,
            delay_ms: 0,
        });
        trace.apps.push(app);
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_unsorted() {
        let mut trace = Trace::new(10_000);
        let mut app = sample_app();
        app.invocations.swap(0, 2);
        trace.apps.push(app);
        assert!(trace.validate().is_err());
    }
}
